// Scenario sweep demo: expand a 40-cell scenario matrix (load scale x
// backfill depth x event profile x partition layout — outages, maintenance
// drains, flash crowds, preemption bursts, correlated rack failures, on
// both a single pool and a heterogeneous 3-partition layout), run every
// cell in parallel on the thread pool, verify the results are bitwise
// identical to a single-threaded run, and print the per-scenario
// queue-wait/utilization report.
//
//   ./scenario_sweep [cluster=a100] [months=2] [scale=0.15] [threads=0]
//                    [trace=out.json]
//
// threads=0 uses hardware concurrency. The parallel-vs-serial check is the
// determinism contract the sweep harness guarantees: per-cell RNG streams
// are pre-assigned at expansion time, so thread count never changes results.
//
// trace=out.json (or --trace out.json) attaches a per-cell trace ring to
// every simulation and writes the merged Chrome trace-event JSON — open it
// in Perfetto / chrome://tracing. Tracing must not perturb results: both
// runs re-execute with rings attached and the serial and parallel trace
// bytes are asserted identical.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scenario/scenario.hpp"
#include "scenario/sweep.hpp"
#include "util/config.hpp"
#include "util/time_utils.hpp"

int main(int argc, char** argv) {
  using namespace mirage;
  using scenario::ScenarioEvent;
  using scenario::ScenarioEventKind;

  auto cli = util::Config::from_args(argc, argv);
  // Conventional spelling of the trace flag: --trace out.json / --trace=out.json.
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) cli.set("trace", argv[i + 1]);
    if (arg.rfind("--trace=", 0) == 0) cli.set("trace", arg.substr(8));
  }

  scenario::SweepMatrix matrix;
  matrix.base.cluster = cli.get_string("cluster", "a100");
  matrix.base.months_begin = 0;
  matrix.base.months_end = static_cast<std::int32_t>(cli.get_int("months", 2));
  matrix.base.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  matrix.base.job_count_scale = cli.get_double("scale", 0.15);

  const std::int32_t nodes = matrix.base.resolved_preset().node_count;
  const std::int32_t half = nodes / 2;
  matrix.utilization_scales = {0.95, 1.1};
  matrix.reservation_depths = {1, 8};
  matrix.event_profiles = {
      {"none", {}},
      // Abrupt outage: half the cluster dies for two days mid-range.
      {"outage",
       {{ScenarioEventKind::kNodeDown, 10 * util::kDay, half, 0, 0, 0, 600},
        {ScenarioEventKind::kNodeRestore, 12 * util::kDay, half, 0, 0, 0, 600}}},
      // Maintenance window: drain a quarter, hold a day, restore.
      {"maintenance",
       {{ScenarioEventKind::kDrain, 20 * util::kDay, half / 2, 0, 0, 0, 600},
        {ScenarioEventKind::kNodeRestore, 21 * util::kDay, half / 2, 0, 0, 0, 600}}},
      // Flash crowd: 120 two-node hour-long jobs inside half an hour.
      {"flash-crowd",
       {{ScenarioEventKind::kBurst, 15 * util::kDay, 2, 120, util::kHour, 2 * util::kHour,
         30 * util::kMinute}}},
  };
  // Correlated rack failure (one RNG draw expands into rack-sized downs)
  // followed by a preemption burst whose victims checkpoint and requeue.
  {
    ScenarioEvent correlated{ScenarioEventKind::kCorrelatedDown, 8 * util::kDay, half};
    correlated.rack_size = std::max(1, half / 4);
    correlated.seed = matrix.base.seed;
    ScenarioEvent preempt{ScenarioEventKind::kPreempt, 16 * util::kDay, half / 2};
    preempt.requeue_delay = 2 * util::kHour;
    ScenarioEvent restore{ScenarioEventKind::kNodeRestore, 18 * util::kDay, half};
    matrix.event_profiles.push_back({"failures", {correlated, preempt, restore}});
  }
  // Partition axis: the same workloads on one pool vs a heterogeneous
  // v100/rtx/a100 split of the same capacity (jobs roam; events without a
  // partition= key hit partitions in index order).
  const std::int32_t third = nodes / 3;
  matrix.partition_layouts = {
      {"single", {}},
      {"3pool", {{"v100", nodes - 2 * third}, {"rtx", third}, {"a100", third}}},
  };

  const auto cells = matrix.expand();
  std::size_t eventful = 0;
  for (const auto& c : cells) eventful += c.has_events();
  std::printf("scenario sweep: %zu cells (%zu event-bearing) on cluster %s\n\n", cells.size(),
              eventful, matrix.base.cluster.c_str());

  const double t0 = util::wall_seconds();
  const auto serial = scenario::SweepRunner::run_serial(cells);
  const double serial_s = util::wall_seconds() - t0;

  const auto threads = static_cast<std::size_t>(cli.get_int("threads", 0));
  const double t1 = util::wall_seconds();
  const auto parallel = scenario::SweepRunner(threads).run(cells);
  const double parallel_s = util::wall_seconds() - t1;

  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (!(serial.cells[i] == parallel.cells[i])) ++mismatches;
  }

  std::printf("%s\n", parallel.format_table().c_str());
  std::printf("serial %.2fs | parallel %.2fs (speedup %.2fx) | bitwise identical: %s\n",
              serial_s, parallel_s, parallel_s > 0 ? serial_s / parallel_s : 0.0,
              mismatches == 0 ? "yes" : "NO");
  if (mismatches != 0) {
    std::printf("ERROR: %zu cells diverged between serial and parallel runs\n", mismatches);
    return 1;
  }

  const std::string trace_path = cli.get_string("trace", "");
  if (!trace_path.empty()) {
    obs::set_enabled(true);
    scenario::SweepTrace serial_trace;
    scenario::SweepTrace parallel_trace;
    const auto traced_serial = scenario::SweepRunner::run_serial(cells, &serial_trace);
    const auto traced_parallel = scenario::SweepRunner(threads).run(cells, &parallel_trace);
    std::size_t traced_mismatches = 0;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (!(traced_serial.cells[i] == serial.cells[i])) ++traced_mismatches;
      if (!(traced_parallel.cells[i] == serial.cells[i])) ++traced_mismatches;
    }
    const std::string json = parallel_trace.to_chrome_json();
    const bool trace_identical = json == serial_trace.to_chrome_json();
    std::string validation_error;
    const bool valid = obs::validate_chrome_trace(json, &validation_error);
    std::ofstream out(trace_path, std::ios::binary);
    if (!out || !(out << json)) {
      std::printf("ERROR: cannot write trace to %s\n", trace_path.c_str());
      return 1;
    }
    out.close();
    std::printf(
        "trace: %zu events -> %s (%zu bytes) | schema valid: %s | serial==parallel bytes: %s | "
        "results unperturbed: %s\n",
        parallel_trace.total_events(), trace_path.c_str(), json.size(), valid ? "yes" : "NO",
        trace_identical ? "yes" : "NO", traced_mismatches == 0 ? "yes" : "NO");
    if (!valid) {
      std::printf("ERROR: emitted trace failed schema validation: %s\n", validation_error.c_str());
      return 1;
    }
    if (!trace_identical || traced_mismatches != 0) {
      std::printf("ERROR: tracing perturbed the sweep (trace or results diverged)\n");
      return 1;
    }
  }
  return 0;
}

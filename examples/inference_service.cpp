// Scenario from the paper's introduction: a long-running DL *inference
// service* (e.g. real-time transient detection on telescope data) that
// must run continuously on a batch cluster with a 48-hour wall-clock
// limit. The service is a chain of single-node sub-jobs J1..Jn; every gap
// between consecutive sub-jobs is downtime for the service.
//
// Trains Mirage, walks the whole chain with rl::run_chain, and compares
// total service downtime against the reactive common practice. Optionally
// persists the trained agent (save=mirage.ckpt) for reuse.
//
//   ./inference_service [cluster=v100] [chain=6] [seed=42] [save=path]
#include <cstdio>

#include "core/checkpoint.hpp"
#include "core/pipeline.hpp"
#include "rl/chain.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace mirage;
  const auto cli = util::Config::from_args(argc, argv);
  const auto preset = trace::preset_by_name(cli.get_string("cluster", "v100"));
  const auto links = static_cast<std::size_t>(cli.get_int("chain", 6));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

  std::printf("Long-running inference service on %s: chain of %zu x 48 h single-node sub-jobs\n\n",
              preset.name.c_str(), links);

  auto cfg = core::PipelineConfig::compact(preset, /*job_nodes=*/1, seed);
  core::MiragePipeline pipeline(cfg);
  pipeline.prepare();
  pipeline.collect_offline();
  pipeline.train(core::Method::kMoeDqn);

  const auto ckpt = cli.get_string("save", "");
  if (!ckpt.empty()) {
    auto* agent = const_cast<rl::DqnAgent*>(pipeline.dqn_agent(core::Method::kMoeDqn));
    std::printf("checkpoint %s: %s\n", ckpt.c_str(),
                core::save_agent(*agent, ckpt) ? "saved" : "FAILED");
  }

  // Start the service somewhere in the validation range and walk the chain
  // under both policies.
  const util::SimTime t0 = pipeline.train_end() + 3 * util::kDay;
  util::Rng rng(seed ^ 0xc4a1);

  const auto run_with = [&](core::Method method) {
    auto provisioner = pipeline.factory(method)();
    return rl::run_chain(pipeline.workload(), preset.node_count, cfg.episode, t0, links,
                         [&](const rl::ProvisionEnv& env) {
                           return provisioner->decide(env, rng);
                         });
  };
  const auto reactive = run_with(core::Method::kReactive);
  const auto mirage = run_with(core::Method::kMoeDqn);

  std::printf("\n%-22s %14s %14s %18s %12s\n", "provisioner", "downtime (h)", "overlap (h)",
              "zero-gap links", "downtime %");
  const auto print_row = [&](const char* name, const rl::ChainResult& r) {
    std::printf("%-22s %14.2f %14.2f %11zu / %-4zu %11.2f%%\n", name,
                util::to_hours(r.total_interruption()), util::to_hours(r.total_overlap()),
                r.zero_interruption_links(), links,
                100.0 * r.downtime_fraction(cfg.episode.job_runtime));
  };
  print_row("reactive (common)", reactive);
  print_row("Mirage (MoE+DQN)", mirage);

  std::printf("\nservice downtime avoided over the chain: %.1f hours\n",
              util::to_hours(reactive.total_interruption() - mirage.total_interruption()));
  return 0;
}

// Quickstart: train Mirage's default provisioner (MoE+DQN) on a synthetic
// A100-style cluster trace and compare it against the reactive baseline on
// held-out months.
//
//   ./quickstart [cluster=a100] [nodes=1] [seed=42]
#include <cstdio>

#include "core/pipeline.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  using namespace mirage;
  const auto cli = util::Config::from_args(argc, argv);

  const auto preset = trace::preset_by_name(cli.get_string("cluster", "a100"));
  const auto nodes = static_cast<std::int32_t>(cli.get_int("nodes", 1));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

  std::printf("Mirage quickstart: %s cluster, %d-node 48 h job pairs\n\n", preset.name.c_str(),
              nodes);

  // 1. Build the pipeline: synthetic trace + 80:20 train/validation split.
  auto config = core::PipelineConfig::compact(preset, nodes, seed);
  core::MiragePipeline pipeline(config);
  pipeline.prepare();

  // 2. Offline phase (§4.9.1): probe episodes -> (state, action, reward).
  pipeline.collect_offline();

  // 3. Train Mirage's default model (MoE foundation + DQN head).
  pipeline.train(core::Method::kMoeDqn);

  // 4. Evaluate on the validation months against the reactive baseline.
  const auto evals = pipeline.evaluate({core::Method::kReactive, core::Method::kMoeDqn});
  std::printf("\n%s\n", core::format_eval_table(evals).c_str());

  const auto& reactive = evals[0].overall;
  const auto& mirage = evals[1].overall;
  std::printf("Mirage zero-interruption jobs: %.0f%% (reactive: %.0f%%)\n",
              100.0 * mirage.zero_interruption_fraction(),
              100.0 * reactive.zero_interruption_fraction());
  if (reactive.interruption_hours.mean() > 0) {
    std::printf("average interruption reduced by %.0f%%\n",
                100.0 * (1.0 - mirage.interruption_hours.mean() /
                                   reactive.interruption_hours.mean()));
  }
  return 0;
}

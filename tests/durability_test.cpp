// Durability tests (ISSUE 10): the WAL segment store's format and
// recovery contracts, proven three ways —
//
//   1. property tests: random record sizes/batches (including 0-byte and
//      larger-than-a-segment records) round-trip bitwise across every
//      sync level, recovery is idempotent, torn tails truncate, any
//      single-byte corruption yields a clean prefix (never a crash or a
//      garbage record), and a segment-numbering gap drops everything
//      after the gap;
//   2. a fork-based crash-injection harness: hundreds of randomized
//      kill/short-write/EIO points at write/fsync/segment-roll
//      boundaries, every recovery prefix-consistent with what the dead
//      writer had committed;
//   3. client recovery: the lab ArtifactStore's journaled runs resume to
//      complete artifact sets (and bitwise-identical leaderboards) after
//      kill -9, the ModelRegistry reloads its last promotion from the
//      promotion log, and a warm-restarted ProvisioningService replays
//      session rings so post-restart decisions are bitwise identical to
//      an uninterrupted service.
//
// On a harness failure the trial's surviving WAL segments are copied to
// ./wal_crash_artifacts/ (CI uploads the directory) before the test
// aborts, so torn logs from a red run can be replayed locally.
#include <gtest/gtest.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "lab/artifact_store.hpp"
#include "lab/experiment.hpp"
#include "lab/leaderboard.hpp"
#include "lab/runner.hpp"
#include "rl/dqn.hpp"
#include "serve/model_registry.hpp"
#include "serve/service.hpp"
#include "util/rng.hpp"
#include "util/wal.hpp"

namespace mirage {
namespace {

namespace fs = std::filesystem;
namespace wal = util::wal;
namespace walt = util::wal::testing;

/// Unique scratch dir per test, removed on destruction.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag) {
    path = fs::temp_directory_path() / ("mirage_dur_" + tag);
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string dir(const std::string& name) const { return (path / name).string(); }
};

/// Copy a trial's surviving WAL segments somewhere CI can upload them.
void preserve_artifacts(const fs::path& dir, const std::string& tag) {
  std::error_code ec;
  const fs::path dst = fs::current_path() / "wal_crash_artifacts" / tag;
  fs::create_directories(dst, ec);
  fs::copy(dir, dst, fs::copy_options::recursive | fs::copy_options::overwrite_existing, ec);
  std::fprintf(stderr, "preserved surviving WAL segments: %s\n", dst.string().c_str());
}

// --------------------------------------------------------------- workload
//
// The crash workload is a pure function of its seed: record i's payload,
// the commit cadence and the sync level are all derived deterministically,
// so the parent can recompute exactly what a killed child was writing.

std::vector<std::uint8_t> trial_payload(std::uint64_t seed, std::size_t index) {
  util::Rng rng(seed * 2654435761ull + index + 1);
  const auto pick = rng.uniform_int(0, 9);
  std::size_t size = 0;
  if (pick == 0) {
    size = 0;  // empty records are legal
  } else if (pick < 7) {
    size = static_cast<std::size_t>(rng.uniform_int(1, 48));
  } else if (pick < 9) {
    size = static_cast<std::size_t>(rng.uniform_int(49, 200));
  } else {
    size = static_cast<std::size_t>(rng.uniform_int(300, 700));  // > segment_bytes
  }
  std::vector<std::uint8_t> out(size);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return out;
}

wal::WalOptions trial_options(std::uint64_t seed) {
  wal::WalOptions options;
  switch (seed % 3) {
    case 0: options.sync = wal::SyncLevel::kNone; break;
    case 1: options.sync = wal::SyncLevel::kOnCommit; break;
    default: options.sync = wal::SyncLevel::kOnRoll; break;
  }
  options.segment_bytes = 256;  // every trial rolls segments many times
  return options;
}

struct Workload {
  std::string dir;
  std::uint64_t seed = 0;
  std::size_t records = 48;
  wal::WalOptions options;
};

/// Append the workload's records, committing every third record (and at
/// the end). Each successful commit's record count is reported through
/// `pipe_fd` (when >= 0), so a killed child's parent knows the durability
/// floor recovery must meet. Returns the committed count; `failed` (when
/// non-null) reports whether an append/commit returned an injected error.
std::uint64_t run_workload(const Workload& w, int pipe_fd, bool* failed = nullptr) {
  if (failed) *failed = false;
  std::uint64_t committed = 0;
  wal::Writer writer;
  if (!writer.open(w.dir, w.options)) {
    if (failed) *failed = true;
    return committed;
  }
  for (std::size_t i = 0; i < w.records; ++i) {
    const auto payload = trial_payload(w.seed, i);
    if (!writer.append(payload.data(), payload.size())) {
      if (failed) *failed = true;
      return committed;
    }
    if (i % 3 != 2 && i + 1 != w.records) continue;
    if (!writer.commit()) {
      if (failed) *failed = true;
      return committed;
    }
    committed = i + 1;
    if (pipe_fd >= 0) {
      const std::uint64_t n = committed;
      (void)!::write(pipe_fd, &n, sizeof(n));
    }
  }
  writer.close();
  return committed;
}

std::vector<std::vector<std::uint8_t>> recover_records(const std::string& dir,
                                                       wal::RecoveryInfo* info = nullptr,
                                                       bool* ok = nullptr,
                                                       std::string* error = nullptr) {
  std::vector<std::vector<std::uint8_t>> out;
  const bool good = wal::recover(
      dir,
      [&out](const void* data, std::size_t size) {
        const auto* p = static_cast<const std::uint8_t*>(data);
        out.emplace_back(p, p + size);
      },
      info, error);
  if (ok) *ok = good;
  return out;
}

std::vector<fs::path> segment_files(const std::string& dir) {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".seg") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

// ------------------------------------------------------- format properties

TEST(WalCrc, KnownVectorAndChaining) {
  // iSCSI CRC32C check value ("123456789" -> 0xE3069283).
  const char digits[] = "123456789";
  EXPECT_EQ(wal::crc32c(0, digits, 9), 0xE3069283u);
  // Chaining: crc(crc(0, a), b) == crc(0, a||b).
  EXPECT_EQ(wal::crc32c(wal::crc32c(0, digits, 4), digits + 4, 5), 0xE3069283u);
  EXPECT_NE(wal::crc32c(0, digits, 9), wal::crc32c(0, digits, 8));
}

TEST(WalRoundTrip, RandomSizesBatchesAndReopenAcrossSyncLevels) {
  TempDir tmp("roundtrip");
  for (const auto sync :
       {wal::SyncLevel::kNone, wal::SyncLevel::kOnCommit, wal::SyncLevel::kOnRoll}) {
    const std::string dir = tmp.dir(std::string("log_") + wal::sync_level_name(sync));
    wal::WalOptions options;
    options.sync = sync;
    options.segment_bytes = 256;  // force rotation
    const std::uint64_t seed = 77 + static_cast<std::uint64_t>(sync);

    std::vector<std::vector<std::uint8_t>> expected;
    util::Rng rng(seed);
    {
      wal::Writer writer;
      ASSERT_TRUE(writer.open(dir, options));
      for (std::size_t i = 0; i < 40; ++i) {
        auto payload = trial_payload(seed, i);
        if (i % 4 == 3 && payload.size() >= 2) {
          // Multi-chunk append: header/payload split must byte-match the
          // contiguous form.
          const std::size_t cut = payload.size() / 2;
          const wal::Chunk chunks[] = {{payload.data(), cut},
                                       {payload.data() + cut, payload.size() - cut}};
          ASSERT_TRUE(writer.append(chunks, 2));
        } else {
          ASSERT_TRUE(writer.append(payload.data(), payload.size()));
        }
        expected.push_back(std::move(payload));
        if (rng.uniform_int(0, 2) == 0) ASSERT_TRUE(writer.commit());
      }
      writer.close();
    }
    {
      // Reopen appends after the last valid record.
      wal::Writer writer;
      ASSERT_TRUE(writer.open(dir, options));
      for (std::size_t i = 40; i < 48; ++i) {
        auto payload = trial_payload(seed, i);
        ASSERT_TRUE(writer.append_commit(payload.data(), payload.size()));
        expected.push_back(std::move(payload));
      }
      EXPECT_GT(writer.segment_index(), 0u);  // 256-byte segments rolled
    }

    wal::RecoveryInfo info;
    bool ok = false;
    std::string error;
    const auto recovered = recover_records(dir, &info, &ok, &error);
    ASSERT_TRUE(ok) << error;
    ASSERT_EQ(recovered.size(), expected.size()) << wal::sync_level_name(sync);
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(recovered[i], expected[i]) << "record " << i;
    }
    EXPECT_FALSE(info.torn_tail);
    EXPECT_GT(info.segments, 1u);
    // The size mix guarantees both extremes appeared.
    bool saw_empty = false, saw_oversize = false;
    for (const auto& r : expected) {
      saw_empty = saw_empty || r.empty();
      saw_oversize = saw_oversize || r.size() > 256;
    }
    EXPECT_TRUE(saw_empty);
    EXPECT_TRUE(saw_oversize);
  }
}

TEST(WalRecovery, IdempotentAndTornTailTruncation) {
  TempDir tmp("idempotent");
  Workload w;
  w.dir = tmp.dir("log");
  w.seed = 11;
  w.options = trial_options(/*seed=*/0);  // kNone
  ASSERT_EQ(run_workload(w, -1), w.records);

  bool ok = false;
  wal::RecoveryInfo first_info;
  const auto first = recover_records(w.dir, &first_info, &ok);
  ASSERT_TRUE(ok);
  ASSERT_EQ(first.size(), w.records);
  EXPECT_FALSE(first_info.torn_tail);

  // Recovery of a clean log is a read-only scan: bytes on disk unchanged,
  // second pass identical.
  std::vector<std::string> bytes_before;
  for (const auto& f : segment_files(w.dir)) bytes_before.push_back(read_file(f));
  const auto second = recover_records(w.dir, nullptr, &ok);
  ASSERT_TRUE(ok);
  EXPECT_EQ(second, first);
  const auto files_after = segment_files(w.dir);
  ASSERT_EQ(files_after.size(), bytes_before.size());
  for (std::size_t i = 0; i < files_after.size(); ++i) {
    EXPECT_EQ(read_file(files_after[i]), bytes_before[i]);
  }

  // A torn tail (garbage appended to the last segment) is truncated on
  // the first recovery; the records already committed are untouched and a
  // third recovery no longer sees the tear.
  {
    std::ofstream out(segment_files(w.dir).back(), std::ios::binary | std::ios::app);
    for (int i = 0; i < 37; ++i) out.put(static_cast<char>(0xAB));
  }
  wal::RecoveryInfo torn_info;
  const auto torn = recover_records(w.dir, &torn_info, &ok);
  ASSERT_TRUE(ok);
  EXPECT_EQ(torn, first);
  EXPECT_TRUE(torn_info.torn_tail);
  EXPECT_EQ(torn_info.truncated_bytes, 37u);

  wal::RecoveryInfo clean_info;
  const auto clean = recover_records(w.dir, &clean_info, &ok);
  ASSERT_TRUE(ok);
  EXPECT_EQ(clean, first);
  EXPECT_FALSE(clean_info.torn_tail);
}

TEST(WalRecovery, SingleByteFlipsNeverYieldGarbageRecords) {
  TempDir tmp("byteflip");
  // Small log (~3 segments) so flipping EVERY byte stays cheap.
  const std::uint64_t seed = 5;
  std::vector<std::vector<std::uint8_t>> expected;
  {
    wal::WalOptions options;
    options.segment_bytes = 256;
    wal::Writer writer;
    ASSERT_TRUE(writer.open(tmp.dir("log"), options));
    for (std::size_t i = 0; i < 18; ++i) {
      util::Rng rng(seed * 131 + i);
      std::vector<std::uint8_t> payload(static_cast<std::size_t>(rng.uniform_int(0, 40)));
      for (auto& b : payload) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      ASSERT_TRUE(writer.append_commit(payload.data(), payload.size()));
      expected.push_back(std::move(payload));
    }
  }

  std::size_t flips = 0, truncations = 0;
  for (const auto& segment : segment_files(tmp.dir("log"))) {
    const auto size = fs::file_size(segment);
    for (std::uintmax_t offset = 0; offset < size; ++offset) {
      const std::string scratch = tmp.dir("scratch");
      fs::remove_all(scratch);
      fs::copy(tmp.dir("log"), scratch, fs::copy_options::recursive);
      {
        std::fstream f(fs::path(scratch) / segment.filename(),
                       std::ios::binary | std::ios::in | std::ios::out);
        f.seekg(static_cast<std::streamoff>(offset));
        const char byte = static_cast<char>(f.get());
        f.seekp(static_cast<std::streamoff>(offset));
        f.put(static_cast<char>(byte ^ 0x5A));
      }
      bool ok = false;
      std::string error;
      const auto recovered = recover_records(scratch, nullptr, &ok, &error);
      // Corruption must never fail recovery (prefix-consistent truncation
      // is the contract) and never surface a record that was not written.
      ASSERT_TRUE(ok) << segment << " offset " << offset << ": " << error;
      ASSERT_LE(recovered.size(), expected.size()) << segment << " offset " << offset;
      for (std::size_t i = 0; i < recovered.size(); ++i) {
        ASSERT_EQ(recovered[i], expected[i])
            << "garbage record " << i << " after flipping " << segment << " offset " << offset;
      }
      ++flips;
      truncations += recovered.size() < expected.size();
    }
  }
  // Sanity on coverage: many flips ran and most landed inside live data.
  EXPECT_GT(flips, 500u);
  EXPECT_GT(truncations, flips / 2);
}

TEST(WalRecovery, SegmentNumberingGapDropsEverythingAfterTheGap) {
  TempDir tmp("gap");
  Workload w;
  w.dir = tmp.dir("log");
  w.seed = 21;
  w.options = trial_options(/*seed=*/0);
  ASSERT_EQ(run_workload(w, -1), w.records);

  bool ok = false;
  const auto full = recover_records(w.dir, nullptr, &ok);
  ASSERT_TRUE(ok);
  auto files = segment_files(w.dir);
  ASSERT_GE(files.size(), 3u);

  // Losing a middle segment breaks the contiguous prefix: recovery keeps
  // what precedes the gap and deletes the unreachable later segments.
  const fs::path lost = files[files.size() / 2];
  fs::remove(lost);
  const auto after = recover_records(w.dir, nullptr, &ok);
  ASSERT_TRUE(ok);
  ASSERT_LT(after.size(), full.size());
  for (std::size_t i = 0; i < after.size(); ++i) ASSERT_EQ(after[i], full[i]);
  for (const auto& f : segment_files(w.dir)) {
    EXPECT_LT(f.filename().string(), lost.filename().string());
  }
}

TEST(WalRecovery, MissingDirAndEmptySegmentAreValidEmptyLogs) {
  TempDir tmp("empty");
  bool ok = false;
  std::string error;
  EXPECT_TRUE(recover_records(tmp.dir("never_created"), nullptr, &ok, &error).empty());
  EXPECT_TRUE(ok) << error;

  // Open/close with no appends leaves a magic-only segment — zero records,
  // not an error, and the log is still appendable.
  {
    wal::Writer writer;
    ASSERT_TRUE(writer.open(tmp.dir("log"), {}));
  }
  wal::RecoveryInfo info;
  EXPECT_TRUE(recover_records(tmp.dir("log"), &info, &ok).empty());
  ASSERT_TRUE(ok);
  EXPECT_EQ(info.segments, 1u);
  {
    wal::Writer writer;
    ASSERT_TRUE(writer.open(tmp.dir("log"), {}));
    ASSERT_TRUE(writer.append_commit("x", 1));
  }
  EXPECT_EQ(recover_records(tmp.dir("log"), nullptr, &ok).size(), 1u);
  EXPECT_TRUE(ok);
}

TEST(WalFaults, FsyncAndRenameHardeningReportInjectedErrors) {
  TempDir tmp("rename");
  const std::string src = tmp.dir("a.tmp");
  const std::string dst = tmp.dir("a.final");
  std::ofstream(src) << "payload";
  std::string error;
  ASSERT_TRUE(wal::fsync_path(src, &error)) << error;
  ASSERT_TRUE(wal::rename_durable(src, dst, &error)) << error;
  EXPECT_FALSE(fs::exists(src));
  ASSERT_TRUE(fs::exists(dst));

  // Injected EIO on the very next op surfaces as a diagnostic, and a
  // failed rename leaves the source in place.
  walt::arm_fault(1, walt::FaultMode::kError);
  error.clear();
  EXPECT_FALSE(wal::fsync_path(dst, &error));
  EXPECT_NE(error.find("injected"), std::string::npos) << error;
  walt::disarm_fault();

  walt::arm_fault(1, walt::FaultMode::kError);
  error.clear();
  EXPECT_FALSE(wal::rename_durable(dst, tmp.dir("b.final"), &error));
  EXPECT_NE(error.find("injected"), std::string::npos) << error;
  walt::disarm_fault();
  EXPECT_TRUE(fs::exists(dst));
  EXPECT_FALSE(fs::exists(tmp.dir("b.final")));
}

// ----------------------------------------------------- crash harness (WAL)

TEST(WalFaults, InjectedWriteErrorsFailLoudlyAndRecoverCommittedPrefix) {
  TempDir tmp("eio");
  util::Rng rng(0xE10E10);
  constexpr std::size_t kTrials = 48;
  for (std::size_t trial = 0; trial < kTrials; ++trial) {
    const std::uint64_t seed = 500 + trial;
    Workload w;
    w.seed = seed;
    w.options = trial_options(seed);

    // Calibrate the op count for this workload shape (count-only mode).
    w.dir = tmp.dir("calib_" + std::to_string(trial));
    walt::arm_fault(0, walt::FaultMode::kNone);
    ASSERT_EQ(run_workload(w, -1), w.records);
    const std::uint64_t ops = walt::fault_ops_seen();
    walt::disarm_fault();
    ASSERT_GT(ops, 0u);
    fs::remove_all(w.dir);

    const auto trigger =
        1 + static_cast<std::uint64_t>(rng.uniform_int(0, static_cast<std::int64_t>(ops) - 1));
    const auto mode =
        trial % 2 ? walt::FaultMode::kShortWriteError : walt::FaultMode::kError;
    w.dir = tmp.dir("eio_" + std::to_string(trial));
    walt::arm_fault(trigger, mode, rng.uniform(0.0, 1.0));
    bool failed = false;
    const std::uint64_t committed = run_workload(w, -1, &failed);
    walt::disarm_fault();

    bool ok = false;
    std::string error;
    const auto recovered = recover_records(w.dir, nullptr, &ok, &error);
    EXPECT_TRUE(ok) << error;
    EXPECT_GE(recovered.size(), committed) << "trial " << trial << " trigger " << trigger;
    EXPECT_LE(recovered.size(), w.records);
    for (std::size_t i = 0; i < recovered.size() && !HasFailure(); ++i) {
      EXPECT_EQ(recovered[i], trial_payload(seed, i)) << "trial " << trial << " record " << i;
    }
    if (HasFailure()) {
      preserve_artifacts(w.dir, "eio_" + std::to_string(trial));
      return;
    }
    fs::remove_all(w.dir);
  }
}

TEST(WalCrashHarness, RandomizedKillPointsRecoverPrefixConsistent) {
  TempDir tmp("kills");
  util::Rng rng(0xD00D5EED);
  constexpr std::size_t kTrials = 168;
  std::size_t survived = 0;  // trials whose trigger never fired
  for (std::size_t trial = 0; trial < kTrials; ++trial) {
    const std::uint64_t seed = 1000 + trial;
    Workload w;
    w.seed = seed;
    w.options = trial_options(seed);

    // Calibration pass: same deterministic workload, fault point counting
    // only. The kill trigger is then drawn uniformly over every
    // write/fsync/segment-open boundary the real run will cross.
    w.dir = tmp.dir("calib");
    fs::remove_all(w.dir);
    walt::arm_fault(0, walt::FaultMode::kNone);
    ASSERT_EQ(run_workload(w, -1), w.records);
    const std::uint64_t ops = walt::fault_ops_seen();
    walt::disarm_fault();
    ASSERT_GT(ops, 0u);

    const auto trigger =
        1 + static_cast<std::uint64_t>(rng.uniform_int(0, static_cast<std::int64_t>(ops) - 1));
    const auto mode = trial % 2 ? walt::FaultMode::kShortWriteKill : walt::FaultMode::kKill;
    const double fraction = rng.uniform(0.0, 1.0);

    w.dir = tmp.dir("trial_" + std::to_string(trial));
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: arm the kill and write until it fires. Commits are
      // reported through the pipe BEFORE the next append, so the last
      // value the parent reads is a floor recovery must reach.
      ::close(fds[0]);
      walt::arm_fault(trigger, mode, fraction);
      bool failed = false;
      run_workload(w, fds[1], &failed);
      ::_exit(failed ? 9 : 0);
    }
    ::close(fds[1]);
    std::uint64_t committed = 0, word = 0;
    while (::read(fds[0], &word, sizeof(word)) == static_cast<ssize_t>(sizeof(word))) {
      committed = word;
    }
    ::close(fds[0]);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    const bool killed = WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
    const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    EXPECT_TRUE(killed || clean)
        << "trial " << trial << ": child neither killed nor clean, status " << status;
    survived += !killed;

    // Prefix consistency: recovery sees every record the child reported
    // committed (process death keeps the page cache, at every sync
    // level), nothing beyond what it wrote, and no record is garbled.
    wal::RecoveryInfo info;
    bool ok = false;
    std::string error;
    const auto recovered = recover_records(w.dir, &info, &ok, &error);
    EXPECT_TRUE(ok) << "trial " << trial << ": " << error;
    EXPECT_GE(recovered.size(), committed)
        << "trial " << trial << " lost committed records (trigger " << trigger << ")";
    EXPECT_LE(recovered.size(), w.records);
    for (std::size_t i = 0; i < recovered.size() && !HasFailure(); ++i) {
      EXPECT_EQ(recovered[i], trial_payload(seed, i))
          << "trial " << trial << " record " << i << " (trigger " << trigger << ")";
    }

    // The recovered log is a live log: a fresh writer extends it.
    if (!HasFailure()) {
      wal::Writer writer;
      EXPECT_TRUE(writer.open(w.dir, w.options, &error)) << error;
      EXPECT_TRUE(writer.append_commit("post-crash", 10));
      writer.close();
      bool ok2 = false;
      const auto extended = recover_records(w.dir, nullptr, &ok2);
      EXPECT_TRUE(ok2);
      EXPECT_EQ(extended.size(), recovered.size() + 1);
    }

    if (HasFailure()) {
      preserve_artifacts(w.dir, "kill_" + std::to_string(trial));
      return;
    }
    fs::remove_all(w.dir);
  }
  // The harness only proves something if the kills actually fire.
  EXPECT_LE(survived, kTrials / 10);
}

// ------------------------------------------------- lab ArtifactStore crash

/// Tiny plan shaped like lab_test's: 2 cells x {Avg, MoE-DQN} = 4 jobs.
lab::ExperimentPlan crash_plan(const std::string& name, std::uint64_t seed = 42) {
  using scenario::ScenarioEventKind;
  lab::ExperimentPlan plan;
  plan.name = name;
  plan.methods = {core::Method::kAvg, core::Method::kMoeDqn};
  plan.budget.collector_anchors = 6;
  plan.budget.pretrain_epochs = 2;
  plan.budget.online_episodes = 8;
  plan.budget.eval_episodes = 6;
  auto& base = plan.matrix.base;
  base.cluster = "a100";
  base.nodes_override = 20;
  base.months_begin = 0;
  base.months_end = 1;
  base.seed = seed;
  base.job_count_scale = 0.3;
  scenario::EventProfile flash;
  flash.name = "flash";
  flash.events = {{ScenarioEventKind::kBurst, 5 * util::kDay, 2, 20, 2 * util::kHour,
                   4 * util::kHour, util::kHour, util::kWeek, 4}};
  plan.matrix.event_profiles = {{"none", {}}, flash};
  return plan;
}

/// Deterministic synthetic result for a job — no training, so the kill
/// harness iterates fast. Every job records a checkpoint to exercise the
/// orphan-purge path.
lab::JobResult synth_row(const lab::ExperimentPlan& plan, const lab::LabJob& job) {
  lab::JobResult r;
  r.cell_index = job.cell_index;
  r.cell = job.cell.name;
  r.cluster = job.cell.cluster;
  r.seed = job.cell.seed;
  r.method = core::method_name(job.method);
  r.eventful = job.cell_index != 0;
  r.episodes = 6 + job.cell_index;
  r.mean_interruption_h = 1.0 / (3.0 + static_cast<double>(job.cell_index));
  r.max_interruption_h = 2.0 * r.mean_interruption_h;
  r.mean_overlap_h = 0.5;
  r.zero_fraction = 0.25;
  r.cell_load = "light";
  r.checkpoint = job.id() + ".ckpt";
  (void)plan;
  return r;
}

/// The child's save loop: init the journaled store, then per job write the
/// checkpoint bytes and commit the manifest+journal record. Returns false
/// on an (injected) IO failure.
bool run_lab_workload(const std::string& root, const lab::ExperimentPlan& plan) {
  lab::StoreOptions so;
  so.journal = true;
  lab::ArtifactStore store(root, so);
  if (!store.init_run(plan)) return false;
  const auto jobs = lab::expand_jobs(plan);
  std::vector<lab::JobResult> rows;
  for (const auto& job : jobs) {
    std::ofstream(store.checkpoint_path(plan, job), std::ios::binary)
        << "ckpt-bytes-" << job.id();
    const auto row = synth_row(plan, job);
    if (!store.save(plan, job, row)) return false;
    rows.push_back(row);
  }
  return store.snapshot_leaderboard(plan, lab::Leaderboard::build(rows));
}

TEST(LabCrashHarness, KilledSavesRecoverToCompleteSetsOnly) {
  TempDir tmp("labkill");
  const auto plan = crash_plan("labkill");
  const auto jobs = lab::expand_jobs(plan);
  util::Rng rng(0xAB5EED);

  // Calibrate once: the save sequence is deterministic, so one count-only
  // pass covers every trial (write/fsync/rename boundaries of the
  // tmp-then-rename manifest commit AND the journal appends).
  walt::arm_fault(0, walt::FaultMode::kNone);
  ASSERT_TRUE(run_lab_workload(tmp.dir("calib"), plan));
  const std::uint64_t ops = walt::fault_ops_seen();
  walt::disarm_fault();
  ASSERT_GT(ops, 4u);

  constexpr std::size_t kTrials = 24;
  for (std::size_t trial = 0; trial < kTrials; ++trial) {
    const auto trigger =
        1 + static_cast<std::uint64_t>(rng.uniform_int(0, static_cast<std::int64_t>(ops) - 1));
    const std::string root = tmp.dir("trial_" + std::to_string(trial));
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      walt::arm_fault(trigger, trial % 2 ? walt::FaultMode::kShortWriteKill
                                         : walt::FaultMode::kKill,
                      0.5);
      run_lab_workload(root, plan);
      ::_exit(0);  // trigger landed past the workload's last op
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    const bool killed = WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
    ASSERT_TRUE(killed || (WIFEXITED(status) && WEXITSTATUS(status) == 0));

    // Recovery: init_run replays the journal and purges strands. The
    // surviving artifact set must contain ONLY complete, loadable,
    // bitwise-correct (manifest, checkpoint) pairs.
    lab::StoreOptions so;
    so.journal = true;
    lab::ArtifactStore store(root, so);
    std::string error;
    ASSERT_TRUE(store.init_run(plan, &error)) << error;
    const auto& rec = store.last_recovery();

    std::set<std::string> referenced;
    std::size_t complete = 0;
    for (const auto& job : jobs) {
      if (const auto loaded = store.load(plan, job)) {
        ++complete;
        EXPECT_TRUE(*loaded == synth_row(plan, job)) << job.id();
        referenced.insert(fs::path(store.checkpoint_path(plan, job)).filename().string());
      }
    }
    EXPECT_EQ(complete, store.count_complete(plan));
    // A journal record is appended only after the manifest rename, so the
    // journal can trail the manifests but never lead them.
    EXPECT_LE(rec.journaled_jobs, complete) << "trial " << trial;
    for (const auto& entry : fs::directory_iterator(store.run_dir(plan))) {
      const auto name = entry.path().filename().string();
      EXPECT_NE(entry.path().extension(), ".tmp") << "stranded temp survived: " << name;
      if (entry.path().extension() == ".ckpt") {
        EXPECT_TRUE(referenced.count(name)) << "orphaned checkpoint survived: " << name;
      }
    }

    // Truncate-then-resume: finish the interrupted run through the
    // recovered store; the full set must load back bitwise.
    for (const auto& job : jobs) {
      if (store.load(plan, job)) continue;
      std::ofstream(store.checkpoint_path(plan, job), std::ios::binary)
          << "ckpt-bytes-" << job.id();
      ASSERT_TRUE(store.save(plan, job, synth_row(plan, job), &error)) << error;
    }
    EXPECT_EQ(store.count_complete(plan), jobs.size());
    for (const auto& job : jobs) {
      const auto loaded = store.load(plan, job);
      ASSERT_TRUE(loaded) << job.id();
      EXPECT_TRUE(*loaded == synth_row(plan, job));
    }

    if (HasFailure()) {
      preserve_artifacts(root, "lab_" + std::to_string(trial));
      return;
    }
    fs::remove_all(root);
  }
}

TEST(LabCrashHarness, DamagedRunResumesToBitwiseIdenticalLeaderboard) {
  // The real-runner acceptance: a journaled run that lost artifacts AND
  // grew strands AND tore its journal tail resumes — through init_run's
  // recovery — to a leaderboard bitwise equal to an uninterrupted run.
  TempDir tmp("labresume");
  const auto plan = crash_plan("labresume");

  lab::ArtifactStore reference_store(tmp.dir("reference"));
  const auto reference = lab::LabRunner::run_serial(plan, reference_store);

  lab::StoreOptions so;
  so.journal = true;
  lab::ArtifactStore first(tmp.dir("crashed"), so);
  (void)lab::LabRunner::run_serial(plan, first);
  const std::string run_dir = first.run_dir(plan);

  // Damage: drop cell 1's artifacts, strand a temp file and an orphan
  // checkpoint, and tear the journal's tail.
  const auto jobs = lab::expand_jobs(plan);
  std::size_t dropped = 0;
  for (const auto& job : jobs) {
    if (job.cell_index != 1) continue;
    dropped += fs::remove(first.manifest_path(plan, job));
    fs::remove(first.checkpoint_path(plan, job));
  }
  ASSERT_EQ(dropped, 2u);
  std::ofstream(fs::path(run_dir) / "half-written.tmp") << "strand";
  std::ofstream(fs::path(run_dir) / "orphan.ckpt") << "no manifest references me";
  const auto journal_segments = segment_files((fs::path(run_dir) / "journal").string());
  ASSERT_FALSE(journal_segments.empty());
  {
    std::ofstream tear(journal_segments.back(), std::ios::binary | std::ios::app);
    for (int i = 0; i < 21; ++i) tear.put(static_cast<char>(0xEE));
  }

  lab::ArtifactStore resumed_store(tmp.dir("crashed"), so);
  const auto resumed = lab::LabRunner(/*threads=*/2).run(plan, resumed_store);
  EXPECT_EQ(resumed.jobs_resumed, 2u);
  EXPECT_EQ(resumed.jobs_run, 2u);
  EXPECT_TRUE(resumed.leaderboard == reference.leaderboard);

  const auto& rec = resumed_store.last_recovery();
  EXPECT_TRUE(rec.torn_tail);
  EXPECT_GE(rec.stranded_removed, 2u);
  // The journaled snapshot from the completed first run survives the tear
  // and reproduces the reference board byte for byte.
  EXPECT_EQ(rec.last_leaderboard_csv, reference.leaderboard.to_csv());
  EXPECT_FALSE(fs::exists(fs::path(run_dir) / "half-written.tmp"));
  EXPECT_FALSE(fs::exists(fs::path(run_dir) / "orphan.ckpt"));
}

// ------------------------------------------------- promotion-log recovery

nn::FoundationConfig promo_net() {
  nn::FoundationConfig net;
  net.history_len = 6;
  net.state_dim = rl::kFrameDim;
  net.d_model = 16;
  net.num_heads = 2;
  net.num_layers = 1;
  net.ffn_hidden = 32;
  net.moe_experts = 2;
  return net;
}

serve::RegistryConfig promo_registry_config() {
  serve::RegistryConfig cfg;
  cfg.net_defaults = promo_net();
  return cfg;
}

rl::DqnAgent promo_dqn(std::uint64_t seed) {
  rl::DqnConfig cfg;
  cfg.foundation = nn::FoundationType::kMoE;
  cfg.net = promo_net();
  return rl::DqnAgent(cfg, seed);
}

TEST(PromotionLog, RestartReloadsLastPromotionPerCluster) {
  TempDir tmp("promolog");
  const std::string log_dir = tmp.dir("promotions");
  auto a1 = promo_dqn(11), a2 = promo_dqn(13), v1 = promo_dqn(17);
  ASSERT_TRUE(core::save_agent(a1, tmp.dir("a100__v1.ckpt")));
  ASSERT_TRUE(core::save_agent(a2, tmp.dir("a100__v2.ckpt")));
  ASSERT_TRUE(core::save_agent(v1, tmp.dir("v100__v1.ckpt")));

  {
    serve::ModelRegistry registry(promo_registry_config());
    std::string error;
    ASSERT_TRUE(registry.attach_promotion_log(log_dir, {}, &error)) << error;
    ASSERT_TRUE(registry.load_file(tmp.dir("a100__v1.ckpt"), "a100").ok);
    ASSERT_TRUE(registry.load_file(tmp.dir("a100__v2.ckpt"), "a100").ok);
    ASSERT_TRUE(registry.load_file(tmp.dir("v100__v1.ckpt"), "v100").ok);
  }

  // A restarted registry replays the log: per cluster the LAST promotion
  // wins (a100 serves v2, not v1).
  {
    serve::ModelRegistry restarted(promo_registry_config());
    std::vector<serve::ModelRegistry::LoadResult> results;
    std::string error;
    const auto restored = restarted.recover_promotions(log_dir, &results, &error);
    EXPECT_TRUE(error.empty()) << error;
    EXPECT_GE(restored, 2u);
    EXPECT_EQ(restarted.size(), 2u);
    const auto a100 = restarted.find("a100", "dqn");
    ASSERT_NE(a100, nullptr);
    EXPECT_EQ(a100->path(), tmp.dir("a100__v2.ckpt"));
    EXPECT_NE(restarted.find("v100", "dqn"), nullptr);

    // Replay must not re-journal (the log would grow on every restart);
    // a FRESH promotion after recovery appends and becomes the new last.
    ASSERT_TRUE(restarted.attach_promotion_log(log_dir, {}, &error)) << error;
    ASSERT_TRUE(restarted.load_file(tmp.dir("a100__v1.ckpt"), "a100").ok);
  }
  {
    serve::ModelRegistry again(promo_registry_config());
    ASSERT_GE(again.recover_promotions(log_dir), 2u);
    const auto a100 = again.find("a100", "dqn");
    ASSERT_NE(a100, nullptr);
    EXPECT_EQ(a100->path(), tmp.dir("a100__v1.ckpt"));
  }

  // A torn log tail truncates silently; a vanished checkpoint degrades to
  // a per-entry error, never a failed recovery.
  {
    std::ofstream tear(segment_files(log_dir).back(), std::ios::binary | std::ios::app);
    tear << "torn!";
  }
  fs::remove(tmp.dir("v100__v1.ckpt"));
  serve::ModelRegistry degraded(promo_registry_config());
  std::vector<serve::ModelRegistry::LoadResult> results;
  std::string error;
  const auto restored = degraded.recover_promotions(log_dir, &results, &error);
  EXPECT_TRUE(error.empty()) << error;
  // Successful replay loads: a100__v2 and the final a100__v1 (same
  // registry key, v1 wins); only the vanished v100 checkpoint fails.
  EXPECT_EQ(restored, 2u);
  EXPECT_EQ(degraded.size(), 1u);
  const auto degraded_a100 = degraded.find("a100", "dqn");
  ASSERT_NE(degraded_a100, nullptr);
  EXPECT_EQ(degraded_a100->path(), tmp.dir("a100__v1.ckpt"));
  bool saw_missing = false;
  for (const auto& r : results) saw_missing = saw_missing || (!r.ok && !r.error.empty());
  EXPECT_TRUE(saw_missing);
}

// --------------------------------------------- serve warm restart (tentpole)

sim::StateSample serve_sample(std::uint64_t session, std::uint64_t step) {
  util::Rng rng(session * 1000003ull + step * 7919ull + 1);
  sim::StateSample s;
  s.now = static_cast<util::SimTime>(step) * 600;
  s.total_nodes = 88;
  s.free_nodes = static_cast<std::int32_t>(rng.uniform_int(0, 88));
  const auto nq = rng.uniform_int(0, 10);
  for (std::int64_t i = 0; i < nq; ++i) {
    s.queued_sizes.push_back(static_cast<double>(rng.uniform_int(1, 8)));
    s.queued_ages.push_back(rng.uniform(0.0, 86400.0));
    s.queued_limits.push_back(rng.uniform(3600.0, 172800.0));
  }
  return s;
}

rl::JobPairContext serve_ctx(std::uint64_t session) {
  rl::JobPairContext ctx;
  ctx.pred_nodes = 1 + static_cast<std::int32_t>(session % 4);
  ctx.pred_elapsed = static_cast<util::SimTime>(session % 7) * util::kHour;
  return ctx;
}

serve::ServiceConfig serve_wal_config(const std::string& wal_dir) {
  serve::ServiceConfig cfg;
  cfg.history_len = promo_net().history_len;
  cfg.shards = 2;
  cfg.engine.max_batch = 4;
  cfg.engine.coalesce_wait = std::chrono::microseconds(0);
  cfg.wal.dir = wal_dir;
  cfg.wal.wal.sync = wal::SyncLevel::kOnCommit;  // per-record durability
  return cfg;
}

TEST(ServeWal, WarmRestartReplaysRingsCountersAndServesBitwiseDecisions) {
  TempDir tmp("swarm");
  auto agent = promo_dqn(23);
  ASSERT_TRUE(core::save_agent(agent, tmp.dir("a100__serve.ckpt")));
  serve::ModelRegistry registry(promo_registry_config());
  const auto load = registry.load_file(tmp.dir("a100__serve.ckpt"), "a100");
  ASSERT_TRUE(load.ok) << load.error;
  const auto model = registry.lookup(load.key);
  ASSERT_NE(model, nullptr);

  const auto cfg = serve_wal_config(tmp.dir("swal"));
  std::vector<float> h1, h2;
  serve::ServiceReport before;
  {
    serve::ProvisioningService a(model, cfg);
    a.start();
    const auto s1 = a.open_session();
    const auto s2 = a.open_session();
    const auto s3 = a.open_session();
    for (std::uint64_t t = 0; t < 9; ++t) a.observe(s1, serve_sample(1, t), serve_ctx(1));
    for (std::uint64_t t = 0; t < 4; ++t) a.observe(s2, serve_sample(2, t), serve_ctx(2));
    a.observe(s3, serve_sample(3, 0), serve_ctx(3));
    for (int i = 0; i < 2; ++i) {
      (void)a.decide(s1);
      (void)a.decide(s2);
      (void)a.decide(s3);
    }
    a.close_session(s3);
    h1 = a.session_history(s1);
    h2 = a.session_history(s2);
    before = a.report();
    EXPECT_FALSE(a.wal_failed());
    a.drain_and_stop();
  }

  // Control: the same streams, never interrupted.
  serve::ServiceConfig plain = cfg;
  plain.wal.dir.clear();
  serve::ProvisioningService control(model, plain);
  control.start();
  const auto c1 = control.open_session();
  const auto c2 = control.open_session();
  for (std::uint64_t t = 0; t < 9; ++t) control.observe(c1, serve_sample(1, t), serve_ctx(1));
  for (std::uint64_t t = 0; t < 4; ++t) control.observe(c2, serve_sample(2, t), serve_ctx(2));

  // Warm restart: the journal replays rings, counters and session ids.
  serve::ProvisioningService b(model, cfg);
  const auto& restore = b.wal_restore_info();
  EXPECT_TRUE(restore.replayed);
  EXPECT_EQ(restore.sessions, 2u);
  EXPECT_EQ(restore.sessions_opened, 3u);
  EXPECT_EQ(restore.closes, 1u);
  EXPECT_EQ(restore.decisions, 6u);
  EXPECT_EQ(restore.frames, 14u);
  EXPECT_FALSE(restore.torn_tail);
  EXPECT_EQ(b.session_count(), 2u);
  EXPECT_EQ(b.session_history(1), h1);  // bitwise: same floats, same order
  EXPECT_EQ(b.session_history(2), h2);
  EXPECT_EQ(b.session_frames_seen(1), 9u);
  EXPECT_EQ(b.session_frames_seen(2), 4u);
  const auto after = b.report();
  EXPECT_EQ(after.decisions, before.decisions);
  EXPECT_EQ(after.submits, before.submits);
  EXPECT_EQ(after.total_sessions, before.total_sessions);
  EXPECT_THROW((void)b.session_history(3), std::out_of_range);  // closed stays closed

  // Post-restart serving is bitwise identical to the uninterrupted
  // control, including after one MORE observed frame.
  b.start();
  const auto d1 = b.decide(1);
  const auto e1 = control.decide(c1);
  EXPECT_EQ(d1.action, e1.action);
  EXPECT_EQ(d1.score_submit, e1.score_submit);
  EXPECT_EQ(d1.score_wait, e1.score_wait);
  b.observe(2, serve_sample(2, 4), serve_ctx(2));
  control.observe(c2, serve_sample(2, 4), serve_ctx(2));
  const auto d2 = b.decide(2);
  const auto e2 = control.decide(c2);
  EXPECT_EQ(d2.action, e2.action);
  EXPECT_EQ(d2.score_submit, e2.score_submit);
  EXPECT_EQ(d2.score_wait, e2.score_wait);

  // New sessions never reuse replayed ids.
  EXPECT_GT(b.open_session(), 3u);
  b.drain_and_stop();
  control.drain_and_stop();

  // Second-generation restart: B's post-restart appends extended the same
  // journal, and they replay too.
  serve::ProvisioningService c(model, cfg);
  EXPECT_EQ(c.session_count(), 3u);  // s1, s2 + the session opened on B
  EXPECT_EQ(c.session_frames_seen(2), 5u);
  EXPECT_EQ(c.report().decisions, before.decisions + 2);
}

TEST(ServeWal, KillNineThenWarmRestartServesBitwiseIdenticalDecisions) {
  TempDir tmp("skill9");
  auto agent = promo_dqn(29);
  ASSERT_TRUE(core::save_agent(agent, tmp.dir("a100__serve.ckpt")));
  serve::ModelRegistry registry(promo_registry_config());
  const auto load = registry.load_file(tmp.dir("a100__serve.ckpt"), "a100");
  ASSERT_TRUE(load.ok) << load.error;
  const auto model = registry.lookup(load.key);
  ASSERT_NE(model, nullptr);
  const auto cfg = serve_wal_config(tmp.dir("swal"));

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: serve with per-record durability, then die without any
    // shutdown path. Blocking decide() journals on the calling thread
    // before returning, so everything below is on disk when we die.
    serve::ProvisioningService victim(model, cfg);
    victim.start();
    const auto s1 = victim.open_session();
    const auto s2 = victim.open_session();
    for (std::uint64_t t = 0; t < 8; ++t) {
      victim.observe(s1, serve_sample(1, t), serve_ctx(1));
      victim.observe(s2, serve_sample(2, t), serve_ctx(2));
    }
    (void)victim.decide(s1);
    (void)victim.decide(s2);
    ::raise(SIGKILL);
    ::_exit(7);  // unreachable
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);

  // Control service, uninterrupted.
  serve::ServiceConfig plain = cfg;
  plain.wal.dir.clear();
  serve::ProvisioningService control(model, plain);
  control.start();
  const auto c1 = control.open_session();
  const auto c2 = control.open_session();
  for (std::uint64_t t = 0; t < 8; ++t) {
    control.observe(c1, serve_sample(1, t), serve_ctx(1));
    control.observe(c2, serve_sample(2, t), serve_ctx(2));
  }

  serve::ProvisioningService survivor(model, cfg);
  const auto& restore = survivor.wal_restore_info();
  EXPECT_TRUE(restore.replayed);
  EXPECT_EQ(restore.sessions, 2u);
  EXPECT_EQ(restore.frames, 16u);
  EXPECT_EQ(restore.decisions, 2u);
  EXPECT_EQ(survivor.session_count(), 2u);
  EXPECT_EQ(survivor.session_history(1), control.session_history(c1));
  EXPECT_EQ(survivor.session_history(2), control.session_history(c2));

  survivor.start();
  const std::vector<std::pair<serve::SessionId, serve::SessionId>> pairs = {{1, c1}, {2, c2}};
  for (const auto& [mine, theirs] : pairs) {
    survivor.observe(mine, serve_sample(mine, 8), serve_ctx(mine));
    control.observe(theirs, serve_sample(mine, 8), serve_ctx(mine));
    const auto d = survivor.decide(mine);
    const auto e = control.decide(theirs);
    EXPECT_EQ(d.action, e.action);
    EXPECT_EQ(d.score_submit, e.score_submit);
    EXPECT_EQ(d.score_wait, e.score_wait);
  }
  survivor.drain_and_stop();
  control.drain_and_stop();
}

TEST(ServeWal, TornJournalTailRestoresThePrefixAndKeepsServing) {
  TempDir tmp("storn");
  auto agent = promo_dqn(31);
  ASSERT_TRUE(core::save_agent(agent, tmp.dir("a100__serve.ckpt")));
  serve::ModelRegistry registry(promo_registry_config());
  const auto load = registry.load_file(tmp.dir("a100__serve.ckpt"), "a100");
  ASSERT_TRUE(load.ok) << load.error;
  const auto model = registry.lookup(load.key);
  const auto cfg = serve_wal_config(tmp.dir("swal"));
  {
    serve::ProvisioningService a(model, cfg);
    a.start();
    const auto s1 = a.open_session();
    for (std::uint64_t t = 0; t < 5; ++t) a.observe(s1, serve_sample(1, t), serve_ctx(1));
    a.drain_and_stop();
  }
  {
    std::ofstream tear(segment_files(tmp.dir("swal")).back(),
                       std::ios::binary | std::ios::app);
    for (int i = 0; i < 13; ++i) tear.put(static_cast<char>(0xCD));
  }
  serve::ProvisioningService b(model, cfg);
  EXPECT_TRUE(b.wal_restore_info().replayed);
  EXPECT_TRUE(b.wal_restore_info().torn_tail);
  EXPECT_EQ(b.session_count(), 1u);
  EXPECT_EQ(b.session_frames_seen(1), 5u);
  b.start();
  EXPECT_NO_THROW((void)b.decide(1));
  b.drain_and_stop();
}

}  // namespace
}  // namespace mirage

// Unit + property tests for src/trace: data model, IO, cleaning (§3.2),
// synthetic generator calibration (Table 1 / Figs 2-3) and analysis.
#include <gtest/gtest.h>

#include "trace/analysis.hpp"
#include "trace/cleaning.hpp"
#include "trace/cluster_presets.hpp"
#include "trace/generator.hpp"
#include "trace/trace_io.hpp"

namespace mirage::trace {
namespace {

using util::kDay;
using util::kHour;
using util::kMonth;

JobRecord make_job(std::int64_t id, SimTime submit, std::int32_t nodes, SimTime runtime,
                   SimTime limit = 48 * kHour) {
  JobRecord j;
  j.job_id = id;
  j.job_name = "job" + std::to_string(id);
  j.user_id = static_cast<std::int32_t>(id % 7);
  j.submit_time = submit;
  j.num_nodes = nodes;
  j.actual_runtime = runtime;
  j.time_limit = limit;
  return j;
}

// ------------------------------------------------------------------- Job

TEST(JobRecord, WaitAndRuntimeAccessors) {
  JobRecord j = make_job(1, 100, 2, 50);
  EXPECT_EQ(j.wait_time(), 0);  // not scheduled yet
  EXPECT_EQ(j.runtime(), 0);
  EXPECT_FALSE(j.scheduled());
  j.start_time = 150;
  j.end_time = 200;
  EXPECT_EQ(j.wait_time(), 50);
  EXPECT_EQ(j.runtime(), 50);
  EXPECT_DOUBLE_EQ(j.node_seconds(), 100.0);
  EXPECT_TRUE(j.scheduled());
}

TEST(JobRecord, SortBySubmitTimeIsStable) {
  Trace t = {make_job(3, 50, 1, 10), make_job(1, 10, 1, 10), make_job(2, 50, 1, 10)};
  sort_by_submit_time(t);
  EXPECT_EQ(t[0].job_id, 1);
  EXPECT_EQ(t[1].job_id, 3);  // stable: 3 came before 2 at submit=50
  EXPECT_EQ(t[2].job_id, 2);
}

TEST(JobRecord, TraceBeginEnd) {
  Trace t = {make_job(1, 100, 1, 10), make_job(2, 50, 1, 10)};
  t[0].end_time = 500;
  EXPECT_EQ(trace_begin(t), 50);
  EXPECT_EQ(trace_end(t), 500);
  EXPECT_EQ(trace_begin({}), 0);
  EXPECT_EQ(trace_end({}), 0);
}

// -------------------------------------------------------------------- IO

TEST(TraceIo, CsvRoundTrip) {
  Trace t = {make_job(1, 100, 2, 300), make_job(2, 200, 8, 400, 24 * kHour)};
  t[0].start_time = 120;
  t[0].end_time = 420;
  t[1].job_name = "has,comma";
  const auto text = to_csv(t);
  const auto parsed = from_csv(text);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].start_time, 120);
  EXPECT_EQ((*parsed)[0].actual_runtime, 300);
  EXPECT_EQ((*parsed)[1].job_name, "has,comma");
  EXPECT_EQ((*parsed)[1].time_limit, 24 * kHour);
}

TEST(TraceIo, MissingHeaderRejected) {
  EXPECT_FALSE(from_csv("foo,bar\n1,2\n").has_value());
}

TEST(TraceIo, MalformedRowsSkipped) {
  const std::string text = std::string(
      "JobID,JobName,UserID,SubmitTime,StartTime,EndTime,Timelimit,NumNodes,ActualRuntime\n") +
      "1,ok,1,100,-1,-1,3600,1,60\n" +
      "junk,bad,1,xx,-1,-1,3600,1,60\n";
  const auto parsed = from_csv(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size(), 1u);
}

TEST(TraceIo, DerivesRuntimeFromStartEndWhenColumnMissing) {
  const std::string text =
      "JobID,JobName,UserID,SubmitTime,StartTime,EndTime,Timelimit,NumNodes\n"
      "1,j,1,0,10,110,3600,1\n";
  const auto parsed = from_csv(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ((*parsed)[0].actual_runtime, 100);
}

// --------------------------------------------------------------- Cleaning

TEST(Cleaning, ParseSubjobSuffix) {
  std::string prefix;
  std::int64_t idx = 0;
  EXPECT_TRUE(parse_subjob_suffix("train.sub3", prefix, idx));
  EXPECT_EQ(prefix, "train");
  EXPECT_EQ(idx, 3);
  EXPECT_FALSE(parse_subjob_suffix("train", prefix, idx));
  EXPECT_FALSE(parse_subjob_suffix("train.sub", prefix, idx));
  EXPECT_FALSE(parse_subjob_suffix("train.subX1", prefix, idx));
}

TEST(Cleaning, DropsOversizeJobs) {
  Trace t = {make_job(1, 0, 4, 100), make_job(2, 10, 100, 100)};
  CleaningReport report;
  const auto cleaned = clean_trace(t, /*cluster_nodes=*/88, &report);
  EXPECT_EQ(cleaned.size(), 1u);
  EXPECT_EQ(report.oversize_dropped, 1u);
  EXPECT_EQ(report.input_jobs, 2u);
  EXPECT_EQ(report.output_jobs, 1u);
}

TEST(Cleaning, MergesSubjobsIntoSpan) {
  Trace t;
  for (int k = 0; k < 3; ++k) {
    JobRecord j = make_job(10 + k, 100 + k * 50, 2, 40);
    j.user_id = 5;
    j.job_name = "exp.sub" + std::to_string(k);
    j.start_time = 200 + k * 50;
    j.end_time = 240 + k * 50;
    t.push_back(j);
  }
  CleaningReport report;
  const auto cleaned = clean_trace(t, 88, &report);
  ASSERT_EQ(cleaned.size(), 1u);
  EXPECT_EQ(report.subjobs_merged, 2u);
  EXPECT_EQ(cleaned[0].submit_time, 100);
  EXPECT_EQ(cleaned[0].start_time, 200);
  EXPECT_EQ(cleaned[0].end_time, 240 + 2 * 50);
  EXPECT_EQ(cleaned[0].job_name, "exp");
  // Duration recomputed over the merged span.
  EXPECT_EQ(cleaned[0].actual_runtime, cleaned[0].end_time - cleaned[0].start_time);
}

TEST(Cleaning, SubjobGroupsKeyedByUser) {
  Trace t;
  JobRecord a = make_job(1, 0, 1, 10);
  a.user_id = 1;
  a.job_name = "x.sub0";
  JobRecord b = make_job(2, 5, 1, 10);
  b.user_id = 2;  // different user, same prefix: NOT merged
  b.job_name = "x.sub0";
  t = {a, b};
  const auto cleaned = clean_trace(t, 88, nullptr);
  EXPECT_EQ(cleaned.size(), 2u);
}

TEST(Cleaning, OutputSortedBySubmit) {
  Trace t = {make_job(1, 500, 1, 10), make_job(2, 100, 1, 10)};
  const auto cleaned = clean_trace(t, 88, nullptr);
  EXPECT_LE(cleaned[0].submit_time, cleaned[1].submit_time);
}

TEST(Cleaning, GeneratorInjectedRowsAreCleaned) {
  GeneratorOptions opt;
  opt.seed = 3;
  opt.job_count_scale = 0.1;
  opt.inject_cleanable_rows = true;
  auto preset = a100_preset();
  SyntheticTraceGenerator gen(preset, opt);
  const auto raw = gen.generate();
  CleaningReport report;
  const auto cleaned = clean_trace(raw, preset.node_count, &report);
  EXPECT_GT(report.oversize_dropped, 0u);
  EXPECT_GT(report.subjobs_merged, 0u);
  for (const auto& j : cleaned) EXPECT_LE(j.num_nodes, preset.node_count);
}

// ---------------------------------------------------------------- Presets

TEST(Presets, LookupByName) {
  EXPECT_EQ(preset_by_name("v100").node_count, 88);
  EXPECT_EQ(preset_by_name("RTX").node_count, 84);
  EXPECT_EQ(preset_by_name("A100").node_count, 76);
  EXPECT_THROW(preset_by_name("h100"), std::invalid_argument);
}

TEST(Presets, MonthsMatchUtilizationVectors) {
  for (const auto& p : all_presets()) {
    EXPECT_EQ(static_cast<std::size_t>(p.months), p.monthly_utilization.size()) << p.name;
  }
}

TEST(Presets, MeanNodesMatchesPaper) {
  // §3.1: 2.5, 1.3, 1.6 nodes/job on V100, RTX, A100 (tolerance: these are
  // calibration targets, not exact).
  EXPECT_NEAR(v100_preset().mean_nodes(), 2.5, 0.45);
  EXPECT_NEAR(rtx_preset().mean_nodes(), 1.3, 0.25);
  EXPECT_NEAR(a100_preset().mean_nodes(), 1.6, 0.3);
}

TEST(Presets, TruncatedMeanBelowUntruncated) {
  for (const auto& p : all_presets()) {
    const double untruncated =
        std::exp(p.runtime_log_mu + p.runtime_log_sigma * p.runtime_log_sigma / 2.0);
    EXPECT_LT(p.mean_runtime_seconds(), untruncated) << p.name;
    EXPECT_GT(p.mean_runtime_seconds(), 0.0) << p.name;
  }
}

// -------------------------------------------------------------- Generator

class GeneratorPresetTest : public ::testing::TestWithParam<std::string> {};

TEST_P(GeneratorPresetTest, JobCountNearCalibrationTarget) {
  const auto preset = preset_by_name(GetParam());
  GeneratorOptions opt;
  opt.seed = 42;
  SyntheticTraceGenerator gen(preset, opt);
  const auto t = gen.generate();
  // Paper filtered job counts: 65,017 / 175,090 / 24,779.
  const std::size_t target = GetParam() == "v100" ? 65017 : GetParam() == "rtx" ? 175090 : 24779;
  EXPECT_GT(t.size(), static_cast<std::size_t>(0.75 * target));
  EXPECT_LT(t.size(), static_cast<std::size_t>(1.35 * target));
}

TEST_P(GeneratorPresetTest, AllJobsWithinPhysicalBounds) {
  const auto preset = preset_by_name(GetParam());
  GeneratorOptions opt;
  opt.seed = 7;
  opt.job_count_scale = 0.2;  // smaller trace, same distributions
  SyntheticTraceGenerator gen(preset, opt);
  for (const auto& j : gen.generate()) {
    EXPECT_GE(j.num_nodes, 1);
    EXPECT_LE(j.num_nodes, preset.node_count);
    EXPECT_GE(j.actual_runtime, 5);
    EXPECT_LE(j.actual_runtime, preset.wall_limit);
    EXPECT_LE(j.actual_runtime, j.time_limit + 1);  // limit >= runtime
    EXPECT_GE(j.submit_time, 0);
    EXPECT_LT(j.submit_time, static_cast<SimTime>(preset.months) * kMonth);
    EXPECT_FALSE(j.scheduled());  // generator leaves start/end unset
  }
}

TEST_P(GeneratorPresetTest, DeterministicForSeed) {
  const auto preset = preset_by_name(GetParam());
  GeneratorOptions opt;
  opt.seed = 99;
  opt.job_count_scale = 0.1;
  SyntheticTraceGenerator g1(preset, opt), g2(preset, opt);
  const auto a = g1.generate();
  const auto b = g2.generate();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].submit_time, b[i].submit_time);
    EXPECT_EQ(a[i].num_nodes, b[i].num_nodes);
    EXPECT_EQ(a[i].actual_runtime, b[i].actual_runtime);
  }
}

TEST_P(GeneratorPresetTest, MonthSliceIsSubsetPattern) {
  const auto preset = preset_by_name(GetParam());
  GeneratorOptions opt;
  opt.seed = 5;
  opt.job_count_scale = 0.1;
  SyntheticTraceGenerator gen(preset, opt);
  const auto slice = gen.generate_months(1, 3);
  for (const auto& j : slice) {
    EXPECT_GE(j.submit_time, 1 * kMonth);
    EXPECT_LT(j.submit_time, 3 * kMonth);
  }
}

INSTANTIATE_TEST_SUITE_P(AllClusters, GeneratorPresetTest,
                         ::testing::Values("v100", "rtx", "a100"));

TEST(Generator, RtxNoiseJobShare) {
  GeneratorOptions opt;
  opt.seed = 21;
  SyntheticTraceGenerator gen(rtx_preset(), opt);
  const auto t = gen.generate();
  std::size_t noise = 0;
  for (const auto& j : t) noise += (j.actual_runtime < 30);
  // §3.1: 96,780 short jobs of 175,090 total.
  EXPECT_NEAR(static_cast<double>(noise), 96780.0, 0.1 * 96780.0);
}

TEST(Generator, CleanClustersHaveNoNoiseJobs) {
  GeneratorOptions opt;
  opt.seed = 21;
  opt.job_count_scale = 0.25;
  for (const auto* name : {"v100", "a100"}) {
    SyntheticTraceGenerator gen(preset_by_name(name), opt);
    for (const auto& j : gen.generate()) EXPECT_GE(j.actual_runtime, 60) << name;
  }
}

TEST(Generator, UtilizationScaleRaisesLoad) {
  auto preset = a100_preset();
  GeneratorOptions low, high;
  low.seed = high.seed = 3;
  low.utilization_scale = 0.5;
  high.utilization_scale = 1.0;
  const auto tl = SyntheticTraceGenerator(preset, low).generate();
  const auto th = SyntheticTraceGenerator(preset, high).generate();
  double nh_low = 0, nh_high = 0;
  for (const auto& j : tl) nh_low += j.node_seconds() + j.num_nodes * j.actual_runtime;
  for (const auto& j : th) nh_high += j.node_seconds() + j.num_nodes * j.actual_runtime;
  EXPECT_GT(nh_high, 1.5 * nh_low);
}

// --------------------------------------------------------------- Analysis

TEST(Analysis, ComputeStatsBasics) {
  Trace t = {make_job(1, 0, 1, 100), make_job(2, kMonth + 10, 4, 200)};
  const auto s = compute_stats(t, "test", 88);
  EXPECT_EQ(s.job_count, 2u);
  EXPECT_DOUBLE_EQ(s.mean_nodes_per_job, 2.5);
  EXPECT_DOUBLE_EQ(s.multi_node_job_fraction, 0.5);
  // multi-node job has 4*200 = 800 node-seconds of 900 total.
  EXPECT_NEAR(s.multi_node_node_hour_fraction, 800.0 / 900.0, 1e-9);
}

TEST(Analysis, MonthlyJobCounts) {
  Trace t = {make_job(1, 0, 1, 10), make_job(2, 10, 1, 10), make_job(3, kMonth + 1, 1, 10)};
  const auto c = monthly_job_counts(t);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c[0], 2u);
  EXPECT_EQ(c[1], 1u);
}

TEST(Analysis, MonthlyAverageWaitSkipsUnscheduled) {
  Trace t = {make_job(1, 0, 1, 10), make_job(2, 100, 1, 10)};
  t[0].start_time = 2 * kHour;  // 2 h wait
  const auto w = monthly_average_wait_hours(t);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_NEAR(w[0], 2.0, 1e-9);
}

TEST(Analysis, NodeHourBreakdownFractionsSumToOne) {
  GeneratorOptions opt;
  opt.seed = 1;
  opt.job_count_scale = 0.2;
  SyntheticTraceGenerator gen(v100_preset(), opt);
  const auto b = node_hour_breakdown(gen.generate());
  double nh = 0, jf = 0;
  for (std::size_t i = 0; i < 5; ++i) {
    nh += b.node_hour_fraction[i];
    jf += b.job_fraction[i];
  }
  EXPECT_NEAR(nh, 1.0, 1e-9);
  EXPECT_NEAR(jf, 1.0, 1e-9);
}

TEST(Analysis, WaitDistributionBuckets) {
  Trace t;
  // one job in each bucket of month 0
  const SimTime waits[] = {kHour, 5 * kHour, 20 * kHour, 30 * kHour, 40 * kHour};
  for (int i = 0; i < 5; ++i) {
    JobRecord j = make_job(i, 100, 1, 10);
    j.start_time = 100 + waits[i];
    t.push_back(j);
  }
  const auto d = wait_distribution(t);
  ASSERT_EQ(d.monthly_fractions.size(), 1u);
  for (std::size_t b = 0; b < 5; ++b) EXPECT_NEAR(d.monthly_fractions[0][b], 0.2, 1e-9);
}

TEST(Analysis, EmptyTraceSafe) {
  EXPECT_EQ(compute_stats({}, "x", 1).job_count, 0u);
  EXPECT_TRUE(monthly_job_counts({}).empty());
  EXPECT_TRUE(monthly_average_wait_hours({}).empty());
  EXPECT_TRUE(wait_distribution({}).monthly_fractions.empty());
}

}  // namespace
}  // namespace mirage::trace

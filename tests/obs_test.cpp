// Observability layer: metrics registry concurrency, trace-ring semantics,
// Chrome trace-event export + validation, profiling spans, and the
// tracing-cannot-perturb-results contract on the sweep harness.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "scenario/scenario.hpp"
#include "scenario/sweep.hpp"
#include "util/time_utils.hpp"

namespace mirage::obs {
namespace {

/// Tests toggle the global instrumentation switch; restore it so suites
/// sharing the process (and the default-on contract) are unaffected.
class ObsEnabledGuard {
 public:
  ObsEnabledGuard() : was_(enabled()) {}
  ~ObsEnabledGuard() { set_enabled(was_); }

 private:
  bool was_;
};

// ----------------------------------------------------------- instruments

TEST(Metrics, CounterConcurrentAddsAreExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, GaugeStoresArbitraryDoubles) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(42.5);
  EXPECT_EQ(g.value(), 42.5);
  g.set(-1e-9);
  EXPECT_EQ(g.value(), -1e-9);
}

TEST(Metrics, HistogramCountsSumsAndBucketsSamples) {
  Histogram h;
  // 1 ms x 100 and 1 s x 100: counts split across two distinct buckets.
  for (int i = 0; i < 100; ++i) h.record(1e-3);
  for (int i = 0; i < 100; ++i) h.record(1.0);
  EXPECT_EQ(h.count(), 200u);
  EXPECT_NEAR(h.sum(), 100.1, 0.5);
  EXPECT_NEAR(h.mean(), 100.1 / 200.0, 0.01);
  // The percentile estimate is bucket-interpolated: p25 lands in the 1 ms
  // bucket neighborhood, p75 in the 1 s one, and it is monotone in q.
  EXPECT_LT(h.percentile(25.0), 0.01);
  EXPECT_GT(h.percentile(75.0), 0.5);
  EXPECT_LE(h.percentile(50.0), h.percentile(90.0));
  std::uint64_t bucketed = 0;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    bucketed += h.bucket(i);
    if (i > 0) {
      EXPECT_LT(Histogram::bucket_upper_seconds(i - 1), Histogram::bucket_upper_seconds(i));
    }
  }
  EXPECT_EQ(bucketed, 200u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
}

TEST(Metrics, HistogramConcurrentRecordsAreExact) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) h.record(1e-6 * (t + 1));
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Metrics, ReservoirPercentilesAreExactUnderCapacity) {
  ReservoirHistogram r(1024);
  for (int i = 1; i <= 100; ++i) r.record(static_cast<double>(i));
  const auto s = r.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_NEAR(s.mean, 50.5, 1e-9);
  EXPECT_NEAR(s.p50, 50.0, 1.0);
  EXPECT_NEAR(s.p95, 95.0, 1.0);
  EXPECT_NEAR(s.p99, 99.0, 1.0);
  EXPECT_EQ(s.max, 100.0);
  r.reset();
  EXPECT_EQ(r.snapshot().count, 0u);
}

TEST(Metrics, RegistryHandlesAreStableAndPrometheusExportIsStructured) {
  MetricsRegistry reg;
  Counter* c = reg.counter("test_ops_total", "operations");
  EXPECT_EQ(reg.counter("test_ops_total"), c);  // register-once semantics
  c->add(7);
  reg.gauge("test_depth", "queue depth")->set(3.5);
  reg.histogram("test_latency_seconds", "latency")->record(0.25);
  EXPECT_EQ(reg.size(), 3u);

  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("# HELP test_ops_total operations"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE test_ops_total counter"), std::string::npos);
  EXPECT_NE(text.find("test_ops_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("test_depth 3.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_latency_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("test_latency_seconds_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("test_latency_seconds_count 1"), std::string::npos);

  reg.reset_all();
  EXPECT_EQ(c->value(), 0u);
}

// ------------------------------------------------------------ trace ring

TEST(Trace, RingOverwritesOldestAndCountsDrops) {
  TraceRing ring(8);
  for (std::int64_t i = 0; i < 20; ++i) {
    TraceEvent ev;
    ev.arg0 = i;
    ring.record(ev);
  }
  EXPECT_EQ(ring.capacity(), 8u);
  EXPECT_EQ(ring.recorded(), 20u);
  EXPECT_EQ(ring.dropped(), 12u);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].arg0, static_cast<std::int64_t>(12 + i));  // oldest surviving first
  }
  ring.clear();
  EXPECT_EQ(ring.recorded(), 0u);
  EXPECT_TRUE(ring.snapshot().empty());
}

TEST(Trace, DisabledRingRecordsNothing) {
  TraceRing ring(8);
  ring.set_recording(false);
  ring.record(TraceEvent{});
  EXPECT_EQ(ring.recorded(), 0u);
  ring.set_recording(true);
  ring.record(TraceEvent{});
  EXPECT_EQ(ring.recorded(), 1u);
}

TEST(Trace, ChromeJsonExportValidatesAndCoversEveryKind) {
  TraceRing ring(64);
  const TraceEventKind kinds[] = {
      TraceEventKind::kJobRun,      TraceEventKind::kJobKill,
      TraceEventKind::kJobPreempt,  TraceEventKind::kJobRequeue,
      TraceEventKind::kClusterEvent, TraceEventKind::kCellStart,
      TraceEventKind::kCellFinish,  TraceEventKind::kBatchFormed,
      TraceEventKind::kCheckpointReload, TraceEventKind::kSpan,
  };
  std::int64_t ts = 0;
  for (const auto kind : kinds) {
    TraceEvent ev;
    ev.kind = kind;
    ev.name = trace_event_kind_name(kind);
    ev.ts = ts++;
    ev.dur = ev.is_slice() ? 5 : 0;
    ev.arg0 = 1;
    ev.arg1 = 2;
    ring.record(ev);
  }
  const std::vector<TraceTrack> tracks = {{"cell 0: unit", 0, &ring}};
  const std::string json = to_chrome_json(tracks);
  std::string error;
  EXPECT_TRUE(validate_chrome_trace(json, &error)) << error;
  // Slices export as complete events, instants as "i".
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("cell 0: unit"), std::string::npos);

  const std::string csv = to_trace_csv(tracks);
  EXPECT_NE(csv.find("track,pid,tid,kind,name,ts,dur,arg0,arg1"), std::string::npos);
  for (const auto kind : kinds) {
    EXPECT_NE(csv.find(trace_event_kind_name(kind)), std::string::npos)
        << trace_event_kind_name(kind);
  }
}

TEST(Trace, ValidatorRejectsMalformedDocuments) {
  const char* bad[] = {
      "",                                  // not JSON
      "42",                                // not an object
      "{}",                                // no traceEvents
      "{\"traceEvents\":[]}",              // empty capture
      "{\"traceEvents\":{}}",              // not an array
      "{\"traceEvents\":[42]}",            // element not an object
      "{\"traceEvents\":[{\"name\":\"x\"}]}",  // missing ph/ts/pid/tid
      "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"i\",\"ts\":0,\"pid\":0,\"tid\":0}]} junk",
  };
  for (const char* doc : bad) {
    std::string error;
    EXPECT_FALSE(validate_chrome_trace(doc, &error)) << doc;
    EXPECT_FALSE(error.empty()) << doc;
  }
  std::string error;
  EXPECT_TRUE(validate_chrome_trace(
      "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"i\",\"ts\":0,\"pid\":0,\"tid\":0,"
      "\"s\":\"t\"}],\"displayTimeUnit\":\"ms\"}",
      &error))
      << error;
}

// ----------------------------------------------------------------- spans

TEST(Span, RecordsIntoPhaseHistogramWhenEnabled) {
  ObsEnabledGuard guard;
  set_enabled(true);
  Histogram* h = registry().histogram("obs_span_seconds_obs_test_phase");
  const std::uint64_t before = h->count();
  for (int i = 0; i < 10; ++i) {
    OBS_SPAN("obs_test_phase");
  }
  EXPECT_EQ(h->count(), before + 10);

  set_enabled(false);
  for (int i = 0; i < 10; ++i) {
    OBS_SPAN("obs_test_phase");
  }
  EXPECT_EQ(h->count(), before + 10);  // disabled scopes record nothing
}

TEST(Span, SampledSpanRecordsEverySecondToTheShiftEntry) {
  ObsEnabledGuard guard;
  set_enabled(true);
  Histogram* h = registry().histogram("obs_span_seconds_obs_test_sampled");
  const std::uint64_t before = h->count();
  // This call site is unique to the test, so its thread_local tick starts
  // at zero here: 32 entries at shift 2 time exactly every 4th one.
  for (int i = 0; i < 32; ++i) {
    OBS_SPAN_SAMPLED("obs_test_sampled", 2);
  }
  EXPECT_EQ(h->count(), before + 8);
}

// ---------------------------------- tracing cannot perturb sweep results

scenario::SweepMatrix tiny_matrix() {
  scenario::SweepMatrix matrix;
  matrix.base.cluster = "a100";
  matrix.base.months_begin = 0;
  matrix.base.months_end = 1;
  matrix.base.seed = 11;
  matrix.base.job_count_scale = 0.05;
  matrix.utilization_scales = {1.0, 1.3};
  matrix.reservation_depths = {1, 8};
  matrix.event_profiles = {
      {"none", {}},
      {"outage",
       {{scenario::ScenarioEventKind::kNodeDown, 5 * util::kDay, 30, 0, 0, 0, 600},
        {scenario::ScenarioEventKind::kNodeRestore, 7 * util::kDay, 30, 0, 0, 0, 600}}},
  };
  return matrix;
}

TEST(SweepTracing, ResultsAreBitwiseIdenticalTracingOnOrOff) {
  ObsEnabledGuard guard;
  const auto cells = tiny_matrix().expand();

  set_enabled(false);
  const auto baseline = scenario::SweepRunner::run_serial(cells);

  set_enabled(true);
  scenario::SweepTrace trace;
  const auto traced = scenario::SweepRunner::run_serial(cells, &trace);

  ASSERT_EQ(traced.cells.size(), baseline.cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_TRUE(traced.cells[i] == baseline.cells[i]) << "cell " << i;
  }
  EXPECT_GT(trace.total_events(), 0u);
}

TEST(SweepTracing, ParallelTraceBytesMatchSerialAndValidate) {
  ObsEnabledGuard guard;
  set_enabled(true);
  const auto cells = tiny_matrix().expand();

  scenario::SweepTrace serial_trace;
  const auto serial = scenario::SweepRunner::run_serial(cells, &serial_trace);
  scenario::SweepTrace parallel_trace;
  const auto parallel = scenario::SweepRunner(4).run(cells, &parallel_trace);

  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_TRUE(serial.cells[i] == parallel.cells[i]) << "cell " << i;
  }
  // Sim-time rings are per cell and merged in expansion order, so the
  // exported bytes are independent of the thread count.
  const std::string serial_json = serial_trace.to_chrome_json();
  EXPECT_EQ(serial_json, parallel_trace.to_chrome_json());
  EXPECT_EQ(serial_trace.to_csv(), parallel_trace.to_csv());

  std::string error;
  EXPECT_TRUE(validate_chrome_trace(serial_json, &error)) << error;
  ASSERT_EQ(serial_trace.cell_count(), cells.size());
  // The outage profile saturates at u=1.3: cells record job activity.
  EXPECT_GT(serial_trace.total_events(), cells.size() * 2);  // beyond lifecycle markers
}

}  // namespace
}  // namespace mirage::obs

// Observability layer: metrics registry concurrency, trace-ring semantics,
// Chrome trace-event export + validation, profiling spans, and the
// tracing-cannot-perturb-results contract on the sweep harness.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "scenario/scenario.hpp"
#include "scenario/sweep.hpp"
#include "util/time_utils.hpp"

namespace mirage::obs {
namespace {

/// Tests toggle the global instrumentation switch; restore it so suites
/// sharing the process (and the default-on contract) are unaffected.
class ObsEnabledGuard {
 public:
  ObsEnabledGuard() : was_(enabled()) {}
  ~ObsEnabledGuard() { set_enabled(was_); }

 private:
  bool was_;
};

// ----------------------------------------------------------- instruments

TEST(Metrics, CounterConcurrentAddsAreExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, GaugeStoresArbitraryDoubles) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(42.5);
  EXPECT_EQ(g.value(), 42.5);
  g.set(-1e-9);
  EXPECT_EQ(g.value(), -1e-9);
}

TEST(Metrics, HistogramCountsSumsAndBucketsSamples) {
  Histogram h;
  // 1 ms x 100 and 1 s x 100: counts split across two distinct buckets.
  for (int i = 0; i < 100; ++i) h.record(1e-3);
  for (int i = 0; i < 100; ++i) h.record(1.0);
  EXPECT_EQ(h.count(), 200u);
  EXPECT_NEAR(h.sum(), 100.1, 0.5);
  EXPECT_NEAR(h.mean(), 100.1 / 200.0, 0.01);
  // The percentile estimate is bucket-interpolated: p25 lands in the 1 ms
  // bucket neighborhood, p75 in the 1 s one, and it is monotone in q.
  EXPECT_LT(h.percentile(25.0), 0.01);
  EXPECT_GT(h.percentile(75.0), 0.5);
  EXPECT_LE(h.percentile(50.0), h.percentile(90.0));
  std::uint64_t bucketed = 0;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    bucketed += h.bucket(i);
    if (i > 0) {
      EXPECT_LT(Histogram::bucket_upper_seconds(i - 1), Histogram::bucket_upper_seconds(i));
    }
  }
  EXPECT_EQ(bucketed, 200u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
}

TEST(Metrics, HistogramConcurrentRecordsAreExact) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) h.record(1e-6 * (t + 1));
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Metrics, ReservoirPercentilesAreExactUnderCapacity) {
  ReservoirHistogram r(1024);
  for (int i = 1; i <= 100; ++i) r.record(static_cast<double>(i));
  const auto s = r.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_NEAR(s.mean, 50.5, 1e-9);
  EXPECT_NEAR(s.p50, 50.0, 1.0);
  EXPECT_NEAR(s.p95, 95.0, 1.0);
  EXPECT_NEAR(s.p99, 99.0, 1.0);
  EXPECT_EQ(s.max, 100.0);
  r.reset();
  EXPECT_EQ(r.snapshot().count, 0u);
}

TEST(Metrics, RegistryHandlesAreStableAndPrometheusExportIsStructured) {
  MetricsRegistry reg;
  Counter* c = reg.counter("test_ops_total", "operations");
  EXPECT_EQ(reg.counter("test_ops_total"), c);  // register-once semantics
  c->add(7);
  reg.gauge("test_depth", "queue depth")->set(3.5);
  reg.histogram("test_latency_seconds", "latency")->record(0.25);
  EXPECT_EQ(reg.size(), 3u);

  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("# HELP test_ops_total operations"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE test_ops_total counter"), std::string::npos);
  EXPECT_NE(text.find("test_ops_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("test_depth 3.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_latency_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("test_latency_seconds_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("test_latency_seconds_count 1"), std::string::npos);

  reg.reset_all();
  EXPECT_EQ(c->value(), 0u);
}

// ------------------------------------------------------------- exemplars

TEST(Metrics, HistogramExemplarsLinkBucketsToRequestIds) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(1e-3);  // fast bulk, no exemplar
  h.record(1e-3, 41);                            // stamp the fast bucket
  h.record(1.0, 99);                             // one slow outlier, stamped

  // The slow sample owns the tail: its bucket exemplar carries id 99.
  const auto tail = h.exemplar_for_percentile(99.9);
  ASSERT_TRUE(tail.valid);
  EXPECT_EQ(tail.id, 99u);
  EXPECT_NEAR(tail.seconds, 1.0, 1e-6);

  // The bulk of the mass sits in the 1 ms bucket stamped with 41.
  const auto body = h.exemplar_for_percentile(50.0);
  ASSERT_TRUE(body.valid);
  EXPECT_EQ(body.id, 41u);

  // Last writer wins within one bucket.
  h.record(1.0, 100);
  EXPECT_EQ(h.exemplar_for_percentile(99.9).id, 100u);

  h.reset();
  EXPECT_FALSE(h.exemplar_for_percentile(99.9).valid);
}

TEST(Metrics, ExemplarFallsBackToNearestStampedBucket) {
  Histogram h;
  // Plain records never stamp; the single stamped bucket serves every
  // percentile query as the nearest diagnostic pointer.
  for (int i = 0; i < 10; ++i) h.record(1.0);
  EXPECT_FALSE(h.exemplar_for_percentile(99.0).valid);
  h.record(1e-3, 7);
  const auto ex = h.exemplar_for_percentile(99.0);  // p99 bucket unstamped
  ASSERT_TRUE(ex.valid);
  EXPECT_EQ(ex.id, 7u);
}

// ------------------------------------------------- exposition linter

TEST(Metrics, LintAcceptsRegistryExposition) {
  MetricsRegistry reg;
  reg.counter("lint_ops_total", "ops")->add(3);
  reg.gauge("lint_depth", "depth")->set(-2.5);
  Histogram* h = reg.histogram("lint_latency_seconds", "latency");
  h->record(1e-3);
  h->record(0.5, /*exemplar_id=*/1234);  // exemplar renders into the dump
  std::string error;
  const std::string text = reg.to_prometheus();
  EXPECT_TRUE(lint_prometheus_exposition(text, &error)) << error << "\n" << text;
  EXPECT_NE(text.find("trace_id=\"1234\""), std::string::npos) << text;
}

TEST(Metrics, LintAcceptsHandwrittenSummaryAndExemplars) {
  const std::string text =
      "# TYPE s summary\n"
      "s{quantile=\"0.5\"} 1\n"
      "s{quantile=\"0.99\"} 2\n"
      "s_count 10\n"
      "s_sum 12\n"
      "# TYPE h histogram\n"
      "# HELP h latency\n"
      "h_bucket{le=\"0.1\"} 1 # {trace_id=\"7\"} 0.05\n"
      "h_bucket{le=\"+Inf\"} 2\n"
      "h_count 2\n"
      "h_sum 0.6\n"
      "# TYPE g gauge\n"
      "g{label=\"with \\\"quotes\\\" and \\n\"} NaN\n";
  std::string error;
  EXPECT_TRUE(lint_prometheus_exposition(text, &error)) << error;
}

TEST(Metrics, LintRejectsMalformedExpositions) {
  const struct {
    const char* doc;
    const char* why;  // substring expected in the diagnostic
  } bad[] = {
      {"", "no samples"},
      {"# TYPE a counter\n", "no samples"},
      {"a 1\n", "no preceding TYPE"},
      {"# TYPE a counter\n# TYPE a counter\na 1\n", "duplicate TYPE"},
      {"# TYPE a counter\na 1\na 2\n", "duplicate series"},
      {"# TYPE a counter\na -1\n", "negative"},
      {"# TYPE a counter\na one\n", ""},
      {"# TYPE a counter\na 1 junk\n", "trailing junk"},
      {"# TYPE a wibble\na 1\n", "unknown TYPE"},
      {"# TYPE 0bad counter\n0bad 1\n", "bad metric name"},
      {"# TYPE a counter\na{l=\"unterminated} 1\n", ""},
      {"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"0.5\"} 2\n"
       "h_bucket{le=\"+Inf\"} 3\nh_count 3\nh_sum 1\n",
       "le not increasing"},
      {"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\n"
       "h_count 3\nh_sum 1\n",
       "not cumulative"},
      {"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_count 1\nh_sum 1\n",
       "missing +Inf"},
      {"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_count 3\nh_sum 1\n",
       "+Inf bucket != _count"},
      {"# TYPE h histogram\nh_bucket 1\nh_bucket{le=\"+Inf\"} 1\nh_count 1\nh_sum 1\n",
       "without le"},
      {"# TYPE s summary\ns{quantile=\"0.9\"} 2\ns{quantile=\"0.5\"} 1\n",
       "quantiles not increasing"},
      {"# TYPE s summary\ns 1\n", "without quantile"},
      {"# TYPE a counter\na 1 # no-label-set 2\n", ""},
  };
  for (const auto& c : bad) {
    std::string error;
    EXPECT_FALSE(lint_prometheus_exposition(c.doc, &error)) << c.doc;
    EXPECT_FALSE(error.empty()) << c.doc;
    if (c.why[0] != '\0') {
      EXPECT_NE(error.find(c.why), std::string::npos) << error << "\nfor doc:\n" << c.doc;
    }
  }
}

// ------------------------------------------------------------ trace ring

TEST(Trace, RingOverwritesOldestAndCountsDrops) {
  TraceRing ring(8);
  for (std::int64_t i = 0; i < 20; ++i) {
    TraceEvent ev;
    ev.arg0 = i;
    ring.record(ev);
  }
  EXPECT_EQ(ring.capacity(), 8u);
  EXPECT_EQ(ring.recorded(), 20u);
  EXPECT_EQ(ring.dropped(), 12u);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].arg0, static_cast<std::int64_t>(12 + i));  // oldest surviving first
  }
  ring.clear();
  EXPECT_EQ(ring.recorded(), 0u);
  EXPECT_TRUE(ring.snapshot().empty());
}

TEST(Trace, DisabledRingRecordsNothing) {
  TraceRing ring(8);
  ring.set_recording(false);
  ring.record(TraceEvent{});
  EXPECT_EQ(ring.recorded(), 0u);
  ring.set_recording(true);
  ring.record(TraceEvent{});
  EXPECT_EQ(ring.recorded(), 1u);
}

TEST(Trace, ChromeJsonExportValidatesAndCoversEveryKind) {
  TraceRing ring(64);
  const TraceEventKind kinds[] = {
      TraceEventKind::kJobRun,      TraceEventKind::kJobKill,
      TraceEventKind::kJobPreempt,  TraceEventKind::kJobRequeue,
      TraceEventKind::kClusterEvent, TraceEventKind::kCellStart,
      TraceEventKind::kCellFinish,  TraceEventKind::kBatchFormed,
      TraceEventKind::kCheckpointReload, TraceEventKind::kSpan,
      TraceEventKind::kRequestBegin, TraceEventKind::kRequestEnqueue,
      TraceEventKind::kRequestComplete,
  };
  std::int64_t ts = 0;
  for (const auto kind : kinds) {
    TraceEvent ev;
    ev.kind = kind;
    ev.name = trace_event_kind_name(kind);
    ev.ts = ts++;
    ev.dur = ev.is_slice() ? 5 : 0;
    ev.arg0 = 1;
    ev.arg1 = 2;
    ring.record(ev);
  }
  const std::vector<TraceTrack> tracks = {{"cell 0: unit", 0, &ring}};
  const std::string json = to_chrome_json(tracks);
  std::string error;
  EXPECT_TRUE(validate_chrome_trace(json, &error)) << error;
  // Slices export as complete events, instants as "i".
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("cell 0: unit"), std::string::npos);

  const std::string csv = to_trace_csv(tracks);
  EXPECT_NE(csv.find("track,pid,tid,kind,name,ts,dur,arg0,arg1"), std::string::npos);
  for (const auto kind : kinds) {
    EXPECT_NE(csv.find(trace_event_kind_name(kind)), std::string::npos)
        << trace_event_kind_name(kind);
  }
}

TEST(Trace, ValidatorRejectsMalformedDocuments) {
  const char* bad[] = {
      "",                                  // not JSON
      "42",                                // not an object
      "{}",                                // no traceEvents
      "{\"traceEvents\":[]}",              // empty capture
      "{\"traceEvents\":{}}",              // not an array
      "{\"traceEvents\":[42]}",            // element not an object
      "{\"traceEvents\":[{\"name\":\"x\"}]}",  // missing ph/ts/pid/tid
      "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"i\",\"ts\":0,\"pid\":0,\"tid\":0}]} junk",
  };
  for (const char* doc : bad) {
    std::string error;
    EXPECT_FALSE(validate_chrome_trace(doc, &error)) << doc;
    EXPECT_FALSE(error.empty()) << doc;
  }
  std::string error;
  EXPECT_TRUE(validate_chrome_trace(
      "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"i\",\"ts\":0,\"pid\":0,\"tid\":0,"
      "\"s\":\"t\"}],\"displayTimeUnit\":\"ms\"}",
      &error))
      << error;
}

// ----------------------------------------------------------------- spans

TEST(Span, RecordsIntoPhaseHistogramWhenEnabled) {
  ObsEnabledGuard guard;
  set_enabled(true);
  Histogram* h = registry().histogram("obs_span_seconds_obs_test_phase");
  const std::uint64_t before = h->count();
  for (int i = 0; i < 10; ++i) {
    OBS_SPAN("obs_test_phase");
  }
  EXPECT_EQ(h->count(), before + 10);

  set_enabled(false);
  for (int i = 0; i < 10; ++i) {
    OBS_SPAN("obs_test_phase");
  }
  EXPECT_EQ(h->count(), before + 10);  // disabled scopes record nothing
}

TEST(Span, SampledSpanRecordsEverySecondToTheShiftEntry) {
  ObsEnabledGuard guard;
  set_enabled(true);
  Histogram* h = registry().histogram("obs_span_seconds_obs_test_sampled");
  const std::uint64_t before = h->count();
  // This call site is unique to the test, so its thread_local tick starts
  // at zero here: 32 entries at shift 2 time exactly every 4th one.
  for (int i = 0; i < 32; ++i) {
    OBS_SPAN_SAMPLED("obs_test_sampled", 2);
  }
  EXPECT_EQ(h->count(), before + 8);
}

// ------------------------------------------------------------ SLO engine

TEST(Slo, AddValidatesSpecs) {
  SloEngine engine;
  SloSpec no_source;
  no_source.name = "x";
  no_source.kind = SloKind::kLatencyQuantile;
  EXPECT_THROW(engine.add(no_source), std::invalid_argument);
  no_source.kind = SloKind::kErrorRate;
  EXPECT_THROW(engine.add(no_source), std::invalid_argument);

  Histogram h;
  SloSpec bad_window;
  bad_window.name = "x";
  bad_window.latency = &h;
  bad_window.short_window_seconds = 0.0;
  EXPECT_THROW(engine.add(bad_window), std::invalid_argument);
  EXPECT_EQ(engine.size(), 0u);
}

TEST(Slo, ErrorRateStateMachineWalksPendingFiringResolvedInactive) {
  Counter bad, good;
  SloEngine engine;
  SloSpec spec;
  spec.name = "rej ect!";  // sanitized to rej_ect_
  spec.kind = SloKind::kErrorRate;
  spec.bad = &bad;
  spec.good = &good;
  spec.budget = 0.1;
  spec.short_window_seconds = 10.0;
  spec.long_window_seconds = 30.0;
  spec.burn_threshold = 1.0;
  spec.pending_seconds = 10.0;
  spec.resolve_seconds = 10.0;
  engine.add(spec);

  std::vector<SloStatus> fired;
  engine.on_fire([&fired](const SloStatus& s) { fired.push_back(s); });

  // t=0: no traffic at all -> burn 0, inactive.
  EXPECT_EQ(engine.evaluate(0.0), 0u);
  auto st = engine.statuses();
  ASSERT_EQ(st.size(), 1u);
  EXPECT_EQ(st[0].name, "rej_ect_");
  EXPECT_EQ(st[0].state, AlertState::kInactive);
  EXPECT_EQ(st[0].burn_short, 0.0);

  // t=10..15: 50% bad against a 10% budget -> burn 5, condition holds but
  // `for` (pending_seconds=10) keeps it pending.
  bad.add(50);
  good.add(50);
  EXPECT_EQ(engine.evaluate(10.0), 0u);
  EXPECT_EQ(engine.statuses()[0].state, AlertState::kPending);
  EXPECT_NEAR(engine.statuses()[0].burn_short, 5.0, 1e-9);
  bad.add(25);
  good.add(25);
  EXPECT_EQ(engine.evaluate(15.0), 0u);
  EXPECT_EQ(engine.statuses()[0].state, AlertState::kPending);
  EXPECT_TRUE(fired.empty());

  // t=20: condition held 10s -> firing; the fire callback sees it.
  bad.add(25);
  good.add(25);
  EXPECT_EQ(engine.evaluate(20.0), 1u);
  EXPECT_EQ(engine.statuses()[0].state, AlertState::kFiring);
  EXPECT_EQ(engine.statuses()[0].fires, 1u);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].state, AlertState::kFiring);
  EXPECT_EQ(fired[0].name, "rej_ect_");
  EXPECT_NE(engine.health_text().find("status: firing"), std::string::npos);

  // t=25..30: healthy traffic floods both windows below threshold, but the
  // resolve hold-down (10s) keeps the alert firing.
  good.add(1000);
  EXPECT_EQ(engine.evaluate(25.0), 0u);
  EXPECT_EQ(engine.statuses()[0].state, AlertState::kFiring);
  good.add(1000);
  EXPECT_EQ(engine.evaluate(30.0), 0u);
  EXPECT_EQ(engine.statuses()[0].state, AlertState::kFiring);

  // t=35: clear held 10s -> resolved; t=40: -> inactive.
  good.add(1000);
  EXPECT_EQ(engine.evaluate(35.0), 0u);
  EXPECT_EQ(engine.statuses()[0].state, AlertState::kResolved);
  good.add(1000);
  EXPECT_EQ(engine.evaluate(40.0), 0u);
  EXPECT_EQ(engine.statuses()[0].state, AlertState::kInactive);
  EXPECT_EQ(engine.statuses()[0].fires, 1u);  // one incident, one fire
  EXPECT_EQ(fired.size(), 1u);
}

TEST(Slo, ShortSpikeAloneDoesNotFireMultiWindowAlert) {
  Counter bad, good;
  SloEngine engine;
  SloSpec spec;
  spec.name = "spike";
  spec.kind = SloKind::kErrorRate;
  spec.bad = &bad;
  spec.good = &good;
  spec.budget = 0.05;
  spec.short_window_seconds = 5.0;
  spec.long_window_seconds = 100.0;
  spec.pending_seconds = 0.0;
  engine.add(spec);

  // A minute of clean traffic, then one bad burst: the short window burns
  // hot but the long window stays under threshold -> no fire.
  for (int t = 0; t <= 50; t += 10) {
    good.add(1000);
    EXPECT_EQ(engine.evaluate(static_cast<double>(t)), 0u);
  }
  bad.add(100);
  EXPECT_EQ(engine.evaluate(60.0), 0u);
  const auto st = engine.statuses()[0];
  EXPECT_GE(st.burn_short, 1.0);
  EXPECT_LT(st.burn_long, 1.0);
  EXPECT_EQ(st.state, AlertState::kInactive);
}

TEST(Slo, LatencyQuantileObjectiveCountsBadBuckets) {
  Histogram h;
  SloEngine engine;
  SloSpec spec;
  spec.name = "lat";
  spec.latency = &h;
  spec.quantile = 50.0;  // effective budget = 0.5
  spec.target_seconds = 0.25;
  spec.short_window_seconds = 1.0;
  spec.long_window_seconds = 2.0;
  spec.pending_seconds = 0.0;  // fire straight from inactive
  engine.add(spec);

  // All samples over target: burn = (10/10)/0.5 = 2 in both windows.
  for (int i = 0; i < 10; ++i) h.record(1.0);
  EXPECT_EQ(engine.evaluate(100.0), 1u);
  const auto st = engine.statuses()[0];
  EXPECT_EQ(st.state, AlertState::kFiring);
  EXPECT_NEAR(st.burn_short, 2.0, 1e-9);
  EXPECT_NEAR(st.budget, 0.5, 1e-9);
  const std::string health = engine.health_text();
  EXPECT_NE(health.find("slo lat kind=latency state=firing"), std::string::npos) << health;

  // The registry carries the live alert instruments.
  EXPECT_EQ(registry().gauge("mirage_slo_lat_state")->value(), 2.0);
  EXPECT_EQ(registry().counter("mirage_slo_lat_fires_total")->value(), 1u);
}

// -------------------------------------------------------- flight recorder

class FlightDirGuard {
 public:
  explicit FlightDirGuard(const char* leaf)
      : dir_(std::filesystem::temp_directory_path() / leaf) {
    std::filesystem::remove_all(dir_);
  }
  ~FlightDirGuard() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  const std::filesystem::path& dir() const { return dir_; }

 private:
  std::filesystem::path dir_;
};

TEST(FlightRecorder, DumpsValidatedBundlesWithProvidersAndPrunes) {
  FlightDirGuard guard("mirage_obs_flight_test");
  auto& fr = flight_recorder();
  FlightRecorderConfig cfg;
  cfg.directory = guard.dir().string();
  cfg.max_events = 64;
  cfg.max_bundles = 2;
  fr.configure(cfg);
  const auto dumps_before = fr.dumps();

  global_trace().record(TraceEvent{});  // at least one wall-clock event
  fr.register_provider("health.txt", [] { return std::string("status: ok\n"); });
  fr.register_provider("broken.txt", []() -> std::string {
    throw std::runtime_error("provider exploded");
  });

  const std::string bundle = fr.dump("unit test/../reason");
  ASSERT_FALSE(bundle.empty());
  EXPECT_NE(bundle.find("unit_test"), std::string::npos);       // sanitized
  EXPECT_EQ(bundle.find(".."), std::string::npos);              // no traversal
  std::string error;
  EXPECT_TRUE(FlightRecorder::validate_bundle(bundle, &error)) << error;

  const auto slurp = [&](const char* leaf) {
    std::ifstream in(std::filesystem::path(bundle) / leaf);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  };
  EXPECT_EQ(slurp("health.txt"), "status: ok\n");
  EXPECT_NE(slurp("broken.txt").find("provider error"), std::string::npos);
  EXPECT_NE(slurp("MANIFEST.txt").find("reason: "), std::string::npos);

  // Prune: a third dump leaves only the newest max_bundles directories.
  fr.dump("two");
  const std::string third = fr.dump("three");
  EXPECT_EQ(fr.dumps(), dumps_before + 3);
  std::size_t bundles = 0;
  bool third_survives = false;
  for (const auto& e : std::filesystem::directory_iterator(guard.dir())) {
    bundles += e.is_directory() ? 1 : 0;
    third_survives = third_survives || e.path().string() == third;
  }
  EXPECT_EQ(bundles, 2u);
  EXPECT_TRUE(third_survives);

  fr.unregister_provider("health.txt");
  fr.unregister_provider("broken.txt");
  const std::string after = fr.dump("four");
  EXPECT_FALSE(std::filesystem::exists(std::filesystem::path(after) / "health.txt"));
}

TEST(FlightRecorder, ValidateBundleRejectsMissingOrCorruptPieces) {
  FlightDirGuard guard("mirage_obs_flight_invalid");
  std::string error;
  EXPECT_FALSE(FlightRecorder::validate_bundle(guard.dir().string(), &error));
  EXPECT_FALSE(error.empty());

  // A real bundle stops validating when its trace is corrupted.
  auto& fr = flight_recorder();
  FlightRecorderConfig cfg;
  cfg.directory = guard.dir().string();
  fr.configure(cfg);
  const std::string bundle = fr.dump("corruptme");
  ASSERT_FALSE(bundle.empty());
  ASSERT_TRUE(FlightRecorder::validate_bundle(bundle, &error)) << error;
  std::ofstream(std::filesystem::path(bundle) / "trace.json") << "{not json";
  EXPECT_FALSE(FlightRecorder::validate_bundle(bundle, &error));
  EXPECT_FALSE(error.empty());
}

TEST(FlightRecorder, FatalSignalPathDumpsASignalBundle) {
  FlightDirGuard guard("mirage_obs_flight_signal");
  auto& fr = flight_recorder();
  FlightRecorderConfig cfg;
  cfg.directory = guard.dir().string();
  fr.configure(cfg);

  detail::dump_on_fatal_signal(6);  // dump body only; nothing is raised

  bool found = false;
  for (const auto& e : std::filesystem::directory_iterator(guard.dir())) {
    if (e.path().filename().string().find("signal_6") != std::string::npos) {
      found = true;
      std::string error;
      EXPECT_TRUE(FlightRecorder::validate_bundle(e.path().string(), &error)) << error;
    }
  }
  EXPECT_TRUE(found);
  // The crash path deliberately freezes the ring (the process was dying);
  // restore the gate for the suites sharing this process.
  EXPECT_FALSE(global_trace().recording());
  global_trace().set_recording(true);
}

// ---------------------------------- tracing cannot perturb sweep results

scenario::SweepMatrix tiny_matrix() {
  scenario::SweepMatrix matrix;
  matrix.base.cluster = "a100";
  matrix.base.months_begin = 0;
  matrix.base.months_end = 1;
  matrix.base.seed = 11;
  matrix.base.job_count_scale = 0.05;
  matrix.utilization_scales = {1.0, 1.3};
  matrix.reservation_depths = {1, 8};
  matrix.event_profiles = {
      {"none", {}},
      {"outage",
       {{scenario::ScenarioEventKind::kNodeDown, 5 * util::kDay, 30, 0, 0, 0, 600},
        {scenario::ScenarioEventKind::kNodeRestore, 7 * util::kDay, 30, 0, 0, 0, 600}}},
  };
  return matrix;
}

TEST(SweepTracing, ResultsAreBitwiseIdenticalTracingOnOrOff) {
  ObsEnabledGuard guard;
  const auto cells = tiny_matrix().expand();

  set_enabled(false);
  const auto baseline = scenario::SweepRunner::run_serial(cells);

  set_enabled(true);
  scenario::SweepTrace trace;
  const auto traced = scenario::SweepRunner::run_serial(cells, &trace);

  ASSERT_EQ(traced.cells.size(), baseline.cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_TRUE(traced.cells[i] == baseline.cells[i]) << "cell " << i;
  }
  EXPECT_GT(trace.total_events(), 0u);
}

TEST(SweepTracing, ParallelTraceBytesMatchSerialAndValidate) {
  ObsEnabledGuard guard;
  set_enabled(true);
  const auto cells = tiny_matrix().expand();

  scenario::SweepTrace serial_trace;
  const auto serial = scenario::SweepRunner::run_serial(cells, &serial_trace);
  scenario::SweepTrace parallel_trace;
  const auto parallel = scenario::SweepRunner(4).run(cells, &parallel_trace);

  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_TRUE(serial.cells[i] == parallel.cells[i]) << "cell " << i;
  }
  // Sim-time rings are per cell and merged in expansion order, so the
  // exported bytes are independent of the thread count.
  const std::string serial_json = serial_trace.to_chrome_json();
  EXPECT_EQ(serial_json, parallel_trace.to_chrome_json());
  EXPECT_EQ(serial_trace.to_csv(), parallel_trace.to_csv());

  std::string error;
  EXPECT_TRUE(validate_chrome_trace(serial_json, &error)) << error;
  ASSERT_EQ(serial_trace.cell_count(), cells.size());
  // The outage profile saturates at u=1.3: cells record job activity.
  EXPECT_GT(serial_trace.total_events(), cells.size() * 2);  // beyond lifecycle markers
}

}  // namespace
}  // namespace mirage::obs

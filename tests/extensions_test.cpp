// Tests for the extension modules: availability profile, schedule metrics,
// trace sampling, sub-job chains, checkpointing, tuner, feature importance.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/checkpoint.hpp"
#include "core/provisioner.hpp"
#include "core/tuner.hpp"
#include "ml/gbdt.hpp"
#include "ml/random_forest.hpp"
#include "rl/chain.hpp"
#include "sim/availability_profile.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "trace/generator.hpp"
#include "trace/sampler.hpp"

namespace mirage {
namespace {

using trace::JobRecord;
using trace::Trace;
using util::kDay;
using util::kHour;
using util::kMinute;
using util::Rng;
using util::SimTime;

JobRecord make_job(std::int64_t id, SimTime submit, std::int32_t nodes, SimTime runtime) {
  JobRecord j;
  j.job_id = id;
  j.submit_time = submit;
  j.num_nodes = nodes;
  j.actual_runtime = runtime;
  j.time_limit = runtime;
  return j;
}

// ---------------------------------------------------- AvailabilityProfile

TEST(AvailabilityProfile, EmptyClusterFitsImmediately) {
  sim::AvailabilityProfile p(100, 8);
  EXPECT_EQ(p.earliest_fit(100, 4, 1000), 100);
  EXPECT_EQ(p.earliest_fit(100, 8, 1000), 100);
}

TEST(AvailabilityProfile, WaitsForRelease) {
  sim::AvailabilityProfile p(0, 2);
  p.add_release(50, 4);  // 6 free from t=50
  EXPECT_EQ(p.earliest_fit(0, 2, 100), 0);
  EXPECT_EQ(p.earliest_fit(0, 4, 100), 50);
  EXPECT_EQ(p.earliest_fit(0, 6, 100), 50);
}

TEST(AvailabilityProfile, ReservationBlocksWindow) {
  sim::AvailabilityProfile p(0, 4);
  p.reserve(100, 50, 4);  // all nodes taken on [100, 150)
  // A 200-long job starting now would cross the reservation.
  EXPECT_EQ(p.earliest_fit(0, 1, 200), 150);
  // A short job fits before it.
  EXPECT_EQ(p.earliest_fit(0, 4, 100), 0);
  // And anything fits after it.
  EXPECT_EQ(p.earliest_fit(0, 4, 1000), 150);
}

TEST(AvailabilityProfile, StackedReservations) {
  sim::AvailabilityProfile p(0, 4);
  p.reserve(0, 100, 2);
  p.reserve(0, 50, 2);
  EXPECT_EQ(p.earliest_fit(0, 1, 10), 50);   // full until 50
  EXPECT_EQ(p.earliest_fit(0, 2, 10), 50);
  EXPECT_EQ(p.earliest_fit(0, 4, 10), 100);
}

TEST(AvailabilityProfile, FitFromLaterTime) {
  sim::AvailabilityProfile p(0, 4);
  p.reserve(100, 100, 4);
  EXPECT_EQ(p.earliest_fit(120, 1, 10), 200);  // asking mid-reservation
}

// -------------------------------------------------------- ScheduleMetrics

TEST(ScheduleMetrics, SingleJobFullUtilization) {
  Trace t = {make_job(1, 0, 4, 3600)};
  const auto sched = sim::replay_trace(t, 4);
  const auto m = sim::compute_schedule_metrics(sched, 4);
  EXPECT_EQ(m.scheduled_jobs, 1u);
  EXPECT_DOUBLE_EQ(m.makespan_hours, 1.0);
  EXPECT_DOUBLE_EQ(m.average_utilization, 1.0);
  EXPECT_DOUBLE_EQ(m.mean_wait_hours, 0.0);
}

TEST(ScheduleMetrics, WaitStatistics) {
  // Two sequential full-cluster jobs: the second waits one hour.
  Trace t = {make_job(1, 0, 4, 3600), make_job(2, 0, 4, 3600)};
  const auto sched = sim::replay_trace(t, 4);
  const auto m = sim::compute_schedule_metrics(sched, 4);
  EXPECT_DOUBLE_EQ(m.mean_wait_hours, 0.5);
  EXPECT_DOUBLE_EQ(m.max_wait_hours, 1.0);
}

TEST(ScheduleMetrics, EmptyScheduleSafe) {
  const auto m = sim::compute_schedule_metrics({}, 4);
  EXPECT_EQ(m.scheduled_jobs, 0u);
  EXPECT_EQ(m.average_utilization, 0.0);
}

TEST(ScheduleMetrics, MonthlyUtilizationSplitsAcrossMonths) {
  // Months are indexed from the first submit time: anchor month 0 with an
  // early job, then let a second job straddle the month boundary.
  Trace t = {make_job(1, 0, 4, kDay), make_job(2, util::kMonth - kDay, 4, 2 * kDay)};
  const auto sched = sim::replay_trace(t, 4);
  const auto util_by_month = sim::monthly_utilization(sched, 4);
  ASSERT_EQ(util_by_month.size(), 2u);
  // Month 0: 1 day (job 1) + 1 day (job 2's first half); month 1: 1 day.
  EXPECT_NEAR(util_by_month[0], 2.0 / 30.0, 1e-9);
  EXPECT_NEAR(util_by_month[1], 1.0 / 30.0, 1e-9);
}

TEST(ScheduleMetrics, UtilizationTracksGeneratorTargets) {
  trace::GeneratorOptions opt;
  opt.seed = 8;
  trace::SyntheticTraceGenerator gen(trace::a100_preset(), opt);
  const auto sched = sim::replay_trace(gen.generate(), 76);
  const auto util_by_month = sim::monthly_utilization(sched, 76);
  ASSERT_GE(util_by_month.size(), 5u);
  // The heavy month (index 2, offered 1.02) must run far hotter than the
  // light first month (offered 0.55).
  EXPECT_GT(util_by_month[2], util_by_month[0] + 0.2);
}

// ---------------------------------------------------------------- Sampler

TEST(Sampler, WindowFiltersAndRebases) {
  Trace t = {make_job(1, 100, 1, 10), make_job(2, 200, 1, 10), make_job(3, 300, 1, 10)};
  const auto w = trace::window(t, 150, 250, /*rebase=*/true);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0].job_id, 2);
  EXPECT_EQ(w[0].submit_time, 50);
  EXPECT_FALSE(w[0].scheduled());
}

TEST(Sampler, RandomWindowWithinSpan) {
  trace::GeneratorOptions opt;
  opt.seed = 9;
  opt.job_count_scale = 0.2;
  trace::SyntheticTraceGenerator gen(trace::a100_preset(), opt);
  const auto full = gen.generate();
  Rng rng(10);
  for (int i = 0; i < 10; ++i) {
    const auto w = trace::random_window(full, util::kWeek, rng);
    ASSERT_FALSE(w.empty());
    const SimTime begin = trace::trace_begin(w);
    for (const auto& j : w) {
      EXPECT_GE(j.submit_time, begin);
      EXPECT_LT(j.submit_time, begin + util::kWeek);
    }
  }
}

TEST(Sampler, RandomWindowTooLongReturnsEmpty) {
  Trace t = {make_job(1, 0, 1, 10), make_job(2, 100, 1, 10)};
  Rng rng(1);
  EXPECT_TRUE(trace::random_window(t, kDay, rng).empty());
}

TEST(Sampler, BootstrapSizeAndUniqueIds) {
  Trace t = {make_job(1, 0, 1, 10), make_job(2, 100, 2, 20)};
  Rng rng(2);
  const auto b = trace::bootstrap(t, 50, rng);
  EXPECT_EQ(b.size(), 50u);
  std::set<std::int64_t> ids;
  for (const auto& j : b) ids.insert(j.job_id);
  EXPECT_EQ(ids.size(), 50u);
  for (std::size_t i = 1; i < b.size(); ++i) {
    EXPECT_LE(b[i - 1].submit_time, b[i].submit_time);
  }
}

TEST(Sampler, ScaleLoadThins) {
  Trace t;
  for (int i = 0; i < 1000; ++i) t.push_back(make_job(i, i * 60, 1, 600));
  Rng rng(3);
  const auto thin = trace::scale_load(t, 0.5, rng);
  EXPECT_NEAR(static_cast<double>(thin.size()), 500.0, 70.0);
}

TEST(Sampler, ScaleLoadAmplifies) {
  Trace t;
  for (int i = 0; i < 500; ++i) t.push_back(make_job(i, i * 60, 1, 600));
  Rng rng(4);
  const auto heavy = trace::scale_load(t, 2.0, rng);
  EXPECT_EQ(heavy.size(), 1000u);
  // Submit order must still be non-decreasing after jitter.
  for (std::size_t i = 1; i < heavy.size(); ++i) {
    EXPECT_LE(heavy[i - 1].submit_time, heavy[i].submit_time);
  }
}

// ------------------------------------------------------------------ Chain

TEST(Chain, EmptyClusterChainHasNoDowntime) {
  rl::EpisodeConfig ec;
  ec.job_runtime = 4 * kHour;
  ec.job_limit = 4 * kHour;
  ec.decision_interval = 10 * kMinute;
  ec.warmup = 2 * kHour;
  ec.history_len = 4;
  const auto result = rl::run_chain({}, 8, ec, kDay, 3,
                                    [](const rl::ProvisionEnv&) { return 0; });  // reactive
  ASSERT_EQ(result.links.size(), 3u);
  EXPECT_EQ(result.total_interruption(), 0);
  EXPECT_EQ(result.total_overlap(), 0);
  EXPECT_EQ(result.zero_interruption_links(), 3u);
  EXPECT_DOUBLE_EQ(result.downtime_fraction(ec.job_runtime), 0.0);
}

TEST(Chain, EagerPolicyOverlapsEveryLink) {
  rl::EpisodeConfig ec;
  ec.job_runtime = 4 * kHour;
  ec.job_limit = 4 * kHour;
  ec.decision_interval = 10 * kMinute;
  ec.warmup = 2 * kHour;
  ec.history_len = 4;
  const auto result = rl::run_chain({}, 8, ec, kDay, 2,
                                    [](const rl::ProvisionEnv&) { return 1; });  // always submit
  EXPECT_EQ(result.total_interruption(), 0);
  EXPECT_GT(result.total_overlap(), 0);
}

TEST(Chain, AnchorsAdvanceByRuntimePlusInterruption) {
  rl::EpisodeConfig ec;
  ec.job_runtime = 4 * kHour;
  ec.job_limit = 4 * kHour;
  ec.decision_interval = 10 * kMinute;
  ec.warmup = 2 * kHour;
  ec.history_len = 4;
  // Overloaded single-node stream (12 offered node-hours per hour on a
  // 4-node cluster) spanning well past the chain, so every reactive link's
  // successor finds a backlog.
  Trace background;
  for (int i = 0; i < 240; ++i) {
    background.push_back(make_job(i, kDay - kHour + i * kHour / 2, 1, 6 * kHour));
  }
  const auto result = rl::run_chain(background, 4, ec, kDay, 3,
                                    [](const rl::ProvisionEnv&) { return 0; });
  EXPECT_GT(result.total_interruption(), 0);
  EXPECT_GT(result.downtime_fraction(ec.job_runtime), 0.0);
  EXPECT_LT(result.downtime_fraction(ec.job_runtime), 1.0);
}

// ------------------------------------------------------------- Checkpoint

nn::FoundationConfig tiny_net() {
  nn::FoundationConfig cfg;
  cfg.history_len = 4;
  cfg.state_dim = rl::kFrameDim;
  cfg.d_model = 8;
  cfg.num_heads = 2;
  cfg.num_layers = 1;
  cfg.ffn_hidden = 16;
  cfg.moe_experts = 2;
  return cfg;
}

TEST(Checkpoint, DqnRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "mirage_ckpt_dqn.bin";
  rl::DqnConfig cfg;
  cfg.net = tiny_net();
  rl::DqnAgent a(cfg, 1), b(cfg, 999);
  ASSERT_TRUE(core::save_agent(a, path.string()));
  ASSERT_TRUE(core::load_agent(b, path.string()));
  std::vector<float> obs(cfg.net.input_dim(), 0.3f);
  const auto [a0, a1] = a.q_pair(obs);
  const auto [b0, b1] = b.q_pair(obs);
  EXPECT_FLOAT_EQ(a0, b0);
  EXPECT_FLOAT_EQ(a1, b1);
  std::filesystem::remove(path);
}

TEST(Checkpoint, PgRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "mirage_ckpt_pg.bin";
  rl::PgConfig cfg;
  cfg.net = tiny_net();
  rl::PgAgent a(cfg, 1), b(cfg, 999);
  ASSERT_TRUE(core::save_agent(a, path.string()));
  ASSERT_TRUE(core::load_agent(b, path.string()));
  std::vector<float> obs(cfg.net.input_dim(), 0.3f);
  EXPECT_FLOAT_EQ(a.submit_probability(obs), b.submit_probability(obs));
  std::filesystem::remove(path);
}

TEST(Checkpoint, RejectsKindMismatch) {
  const auto path = std::filesystem::temp_directory_path() / "mirage_ckpt_kind.bin";
  rl::DqnConfig dq;
  dq.net = tiny_net();
  rl::DqnAgent a(dq, 1);
  ASSERT_TRUE(core::save_agent(a, path.string()));
  rl::PgConfig pg;
  pg.net = tiny_net();
  pg.foundation = dq.foundation;
  rl::PgAgent b(pg, 1);
  EXPECT_FALSE(core::load_agent(b, path.string()));
  std::filesystem::remove(path);
}

TEST(Checkpoint, RejectsArchitectureMismatch) {
  const auto path = std::filesystem::temp_directory_path() / "mirage_ckpt_arch.bin";
  rl::DqnConfig cfg;
  cfg.net = tiny_net();
  rl::DqnAgent a(cfg, 1);
  ASSERT_TRUE(core::save_agent(a, path.string()));
  cfg.net.d_model = 16;
  rl::DqnAgent b(cfg, 1);
  EXPECT_FALSE(core::load_agent(b, path.string()));
  std::filesystem::remove(path);
}

TEST(Checkpoint, ReadInfoHeader) {
  const auto path = std::filesystem::temp_directory_path() / "mirage_ckpt_info.bin";
  rl::DqnConfig cfg;
  cfg.foundation = nn::FoundationType::kMoE;
  cfg.net = tiny_net();
  rl::DqnAgent a(cfg, 1);
  ASSERT_TRUE(core::save_agent(a, path.string()));
  const auto info = core::read_checkpoint_info(path.string());
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->kind, "dqn");
  EXPECT_EQ(info->foundation, "moe");
  EXPECT_EQ(info->d_model, 8u);
  std::filesystem::remove(path);
  EXPECT_FALSE(core::read_checkpoint_info(path.string()).has_value());
}

// ------------------------------------------------------------------ Tuner

TEST(Tuner, RanksCandidatesByValidationLoss) {
  // Synthetic regression task where reward depends on one state slot:
  // every candidate can learn it, so losses must be finite and sorted.
  Rng rng(5);
  const auto net = tiny_net();
  std::vector<rl::Experience> samples;
  for (int i = 0; i < 120; ++i) {
    rl::Experience e;
    e.observation.assign(net.input_dim(), 0.0f);
    const float level = static_cast<float>(rng.uniform());
    for (std::size_t s = 0; s < net.history_len; ++s) {
      e.observation[s * rl::kFrameDim] = level;
    }
    e.action = rng.bernoulli(0.5) ? 1 : 0;
    e.reward = -4.0f * level;
    samples.push_back(std::move(e));
  }
  core::TunerOptions opts;
  opts.pretrain.epochs = 8;
  std::vector<core::TunerCandidate> grid;
  for (std::size_t d : {4u, 8u}) {
    core::TunerCandidate c;
    c.net = net;
    c.net.d_model = d;
    c.net.ffn_hidden = 2 * d;
    c.type = nn::FoundationType::kTransformer;
    c.label = "d" + std::to_string(d);
    grid.push_back(c);
  }
  const auto results = core::grid_search(samples, grid, opts);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_LE(results[0].validation_loss, results[1].validation_loss);
  for (const auto& r : results) {
    EXPECT_TRUE(std::isfinite(r.validation_loss));
    EXPECT_TRUE(std::isfinite(r.train_loss));
  }
}

TEST(Tuner, DefaultGridCoversBothFoundations) {
  const auto grid = core::default_grid(tiny_net());
  EXPECT_GE(grid.size(), 6u);
  bool has_tf = false, has_moe = false;
  for (const auto& c : grid) {
    has_tf |= (c.type == nn::FoundationType::kTransformer);
    has_moe |= (c.type == nn::FoundationType::kMoE);
  }
  EXPECT_TRUE(has_tf);
  EXPECT_TRUE(has_moe);
}

TEST(Tuner, EmptySamplesReturnEmpty) {
  core::TunerOptions opts;
  EXPECT_TRUE(core::grid_search({}, core::default_grid(tiny_net()), opts).empty());
}

// ------------------------------------------------------ FeatureImportance

TEST(FeatureImportance, IdentifiesTheInformativeFeature) {
  // y depends only on feature 1.
  ml::Dataset d(3);
  Rng rng(6);
  for (int i = 0; i < 400; ++i) {
    const float a = static_cast<float>(rng.uniform(-1, 1));
    const float b = static_cast<float>(rng.uniform(-1, 1));
    const float c = static_cast<float>(rng.uniform(-1, 1));
    d.add_row(std::vector<float>{a, b, c}, 3.0f * b);
  }
  ml::RandomForest forest;
  ml::ForestParams fp;
  fp.num_trees = 16;
  fp.tree.max_features = 3;  // let every tree see the informative feature
  forest.fit(d, fp);
  const auto rf = forest.feature_importance(3);
  EXPECT_GT(rf[1], 0.8);

  ml::Gbdt gbdt;
  ml::GbdtParams gp;
  gp.num_rounds = 30;
  gbdt.fit(d, gp);
  const auto gb = gbdt.feature_importance(3);
  EXPECT_GT(gb[1], 0.8);

  EXPECT_NEAR(rf[0] + rf[1] + rf[2], 1.0, 1e-9);
  EXPECT_NEAR(gb[0] + gb[1] + gb[2], 1.0, 1e-9);
}

TEST(FeatureImportance, UntrainedModelsAreAllZero) {
  ml::RandomForest forest;
  const auto imp = forest.feature_importance(4);
  for (double v : imp) EXPECT_EQ(v, 0.0);
}

}  // namespace
}  // namespace mirage

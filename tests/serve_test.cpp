// Tests for the online provisioning subsystem (src/serve): registry
// load/validate/hot-reload, batched-vs-B=1 inference parity, concurrent
// session bookkeeping, deterministic replay and graceful drain.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <set>
#include <stdexcept>
#include <thread>

#include "core/checkpoint.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "rl/state_encoder.hpp"
#include "serve/inference_engine.hpp"
#include "serve/model_registry.hpp"
#include "serve/service.hpp"
#include "util/rng.hpp"

namespace mirage::serve {
namespace {

namespace fs = std::filesystem;

// Compact architecture shared by every test agent AND the registry
// defaults (non-header knobs must agree for reconstruction).
nn::FoundationConfig test_net() {
  nn::FoundationConfig net;
  net.history_len = 6;
  net.state_dim = rl::kFrameDim;
  net.d_model = 16;
  net.num_heads = 2;
  net.num_layers = 1;
  net.ffn_hidden = 32;
  net.moe_experts = 2;
  return net;
}

RegistryConfig test_registry_config() {
  RegistryConfig cfg;
  cfg.net_defaults = test_net();
  return cfg;
}

rl::DqnAgent make_dqn(std::uint64_t seed, nn::FoundationType type = nn::FoundationType::kMoE) {
  rl::DqnConfig cfg;
  cfg.foundation = type;
  cfg.net = test_net();
  return rl::DqnAgent(cfg, seed);
}

rl::PgAgent make_pg(std::uint64_t seed) {
  rl::PgConfig cfg;
  cfg.foundation = nn::FoundationType::kTransformer;
  cfg.net = test_net();
  return rl::PgAgent(cfg, seed);
}

/// Unique scratch dir per test, removed on destruction.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag) {
    path = fs::temp_directory_path() / ("mirage_serve_" + tag);
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string file(const std::string& name) const { return (path / name).string(); }
};

/// Deterministic synthetic cluster snapshot stream (per session, per step).
sim::StateSample make_sample(std::uint64_t session, std::uint64_t step) {
  util::Rng rng(session * 1000003ull + step * 7919ull + 1);
  sim::StateSample s;
  s.now = static_cast<util::SimTime>(step) * 600;
  s.total_nodes = 88;
  s.free_nodes = static_cast<std::int32_t>(rng.uniform_int(0, 88));
  const auto nq = rng.uniform_int(0, 10);
  for (std::int64_t i = 0; i < nq; ++i) {
    s.queued_sizes.push_back(static_cast<double>(rng.uniform_int(1, 8)));
    s.queued_ages.push_back(rng.uniform(0.0, 86400.0));
    s.queued_limits.push_back(rng.uniform(3600.0, 172800.0));
  }
  const auto nr = rng.uniform_int(0, 12);
  for (std::int64_t i = 0; i < nr; ++i) {
    s.running_sizes.push_back(static_cast<double>(rng.uniform_int(1, 8)));
    s.running_elapsed.push_back(rng.uniform(0.0, 172800.0));
    s.running_limits.push_back(rng.uniform(3600.0, 172800.0));
  }
  return s;
}

rl::JobPairContext make_ctx(std::uint64_t session) {
  rl::JobPairContext ctx;
  ctx.pred_nodes = 1 + static_cast<std::int32_t>(session % 4);
  ctx.pred_elapsed = static_cast<util::SimTime>(session % 7) * util::kHour;
  return ctx;
}

/// Allocation-free stub model: decision = sign of the first element.
/// `short_batch` mimics a broken hot-reloaded model whose infer truncates
/// its output vector — the engine must refuse to serve such a batch.
struct StubModel : ServableModel {
  static core::CheckpointInfo stub_info(std::size_t dim) {
    core::CheckpointInfo info;
    info.history_len = 1;
    info.state_dim = dim;
    return info;
  }
  explicit StubModel(std::size_t dim, bool short_batch = false)
      : ServableModel({"stub", "dqn", "moe"}, stub_info(dim), "<stub>", 1, nullptr, nullptr),
        short_batch_(short_batch) {}
  void infer_into(const std::vector<std::vector<float>>& observations,
                  std::vector<Decision>& out) const override {
    out.resize(observations.size());
    for (std::size_t i = 0; i < observations.size(); ++i) {
      out[i].action = !observations[i].empty() && observations[i][0] > 0.0f ? 1 : 0;
      out[i].score_submit = out[i].action ? 1.0f : 0.0f;
      out[i].score_wait = 1.0f - out[i].score_submit;
      out[i].model_version = version();
    }
    if (short_batch_ && out.size() > 1) out.pop_back();
  }
  bool short_batch_;
};

// ---------------------------------------------------------------- Registry

TEST(ModelRegistry, ScanLoadsAndKeysCheckpoints) {
  TempDir dir("scan");
  auto dqn = make_dqn(11);
  auto pg = make_pg(13);
  ASSERT_TRUE(core::save_agent(dqn, dir.file("v100__moe_dqn.ckpt")));
  ASSERT_TRUE(core::save_agent(pg, dir.file("rtx__tf_pg.ckpt")));

  ModelRegistry registry(test_registry_config());
  std::vector<ModelRegistry::LoadResult> results;
  EXPECT_EQ(registry.scan_directory(dir.path.string(), &results), 2u);
  EXPECT_EQ(registry.size(), 2u);
  for (const auto& r : results) EXPECT_TRUE(r.ok) << r.error;

  const auto dqn_model = registry.lookup({"v100", "dqn", "moe"});
  ASSERT_NE(dqn_model, nullptr);
  EXPECT_TRUE(dqn_model->is_dqn());
  EXPECT_EQ(dqn_model->info().history_len, test_net().history_len);
  EXPECT_EQ(dqn_model->info().d_model, test_net().d_model);

  const auto pg_model = registry.find("rtx", "pg");
  ASSERT_NE(pg_model, nullptr);
  EXPECT_FALSE(pg_model->is_dqn());
  EXPECT_EQ(pg_model->key().foundation, "transformer");

  EXPECT_EQ(registry.lookup({"a100", "dqn", "moe"}), nullptr);
  EXPECT_EQ(registry.keys().size(), 2u);
}

TEST(ModelRegistry, RejectsArchitectureMismatch) {
  TempDir dir("mismatch");
  // Same header fields, different depth (num_layers is not in the header,
  // so only the parameter-shape validation can catch it).
  rl::DqnConfig deep;
  deep.foundation = nn::FoundationType::kMoE;
  deep.net = test_net();
  deep.net.num_layers = 3;
  rl::DqnAgent agent(deep, 5);
  ASSERT_TRUE(core::save_agent(agent, dir.file("v100__deep.ckpt")));

  ModelRegistry registry(test_registry_config());
  const auto res = registry.load_file(dir.file("v100__deep.ckpt"), "v100");
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("architecture mismatch"), std::string::npos) << res.error;
  EXPECT_EQ(registry.size(), 0u);
}

TEST(ModelRegistry, RejectsWrongFrameWidthAndGarbage) {
  TempDir dir("reject");
  rl::DqnConfig narrow;
  narrow.foundation = nn::FoundationType::kMoE;
  narrow.net = test_net();
  narrow.net.state_dim = 10;  // not the serving frame width
  rl::DqnAgent agent(narrow, 5);
  ASSERT_TRUE(core::save_agent(agent, dir.file("v100__narrow.ckpt")));
  {
    std::ofstream out(dir.file("v100__junk.ckpt"), std::ios::binary);
    out << "not a checkpoint at all";
  }

  ModelRegistry registry(test_registry_config());
  std::vector<ModelRegistry::LoadResult> results;
  EXPECT_EQ(registry.scan_directory(dir.path.string(), &results), 0u);
  EXPECT_EQ(registry.size(), 0u);
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) EXPECT_FALSE(r.ok);
}

TEST(ModelRegistry, RejectsZeroExpertMoEHeader) {
  // A crafted header with moe_experts=0 must be refused before any agent
  // is constructed (it would index an empty expert table when served).
  TempDir dir("zeroexp");
  {
    std::ofstream out(dir.file("v100__zero.ckpt"), std::ios::binary);
    out << "MIRAGE-CKPT-2 dqn moe 6 " << rl::kFrameDim << " 16 0 1\n"
        << "garbage parameter bytes";
  }
  ModelRegistry registry(test_registry_config());
  const auto res = registry.load_file(dir.file("v100__zero.ckpt"), "v100");
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("degenerate"), std::string::npos) << res.error;
}

TEST(ModelRegistry, ScanOfMissingDirectoryReportsError) {
  ModelRegistry registry(test_registry_config());
  std::vector<ModelRegistry::LoadResult> results;
  EXPECT_EQ(registry.scan_directory("/no/such/dir/anywhere", &results), 0u);
  ASSERT_EQ(results.size(), 1u);  // not silently "empty directory"
  EXPECT_FALSE(results[0].ok);
  EXPECT_NE(results[0].error.find("/no/such/dir/anywhere"), std::string::npos);
}

TEST(ModelRegistry, ClusterParsedFromFilename) {
  EXPECT_EQ(cluster_from_filename("/models/v100__moe_dqn.ckpt"), "v100");
  EXPECT_EQ(cluster_from_filename("rtx__a__b.ckpt"), "rtx");
  EXPECT_EQ(cluster_from_filename("/models/plain.ckpt"), "plain");
}

// ------------------------------------------------------------------ Parity

TEST(BatchedInference, DqnBatchedMatchesSingleBitwise) {
  TempDir dir("parity_dqn");
  auto trained = make_dqn(101);
  ASSERT_TRUE(core::save_agent(trained, dir.file("v100__dqn.ckpt")));

  ModelRegistry registry(test_registry_config());
  ASSERT_TRUE(registry.load_file(dir.file("v100__dqn.ckpt"), "v100").ok);
  const auto model = registry.lookup({"v100", "dqn", "moe"});
  ASSERT_NE(model, nullptr);

  util::Rng rng(7);
  std::vector<std::vector<float>> observations;
  for (int i = 0; i < 33; ++i) {  // odd size: exercises non-full tiles
    std::vector<float> obs(model->observation_dim());
    for (auto& v : obs) v = static_cast<float>(rng.normal());
    observations.push_back(std::move(obs));
  }

  const auto batched = model->infer(observations);
  ASSERT_EQ(batched.size(), observations.size());
  for (std::size_t i = 0; i < observations.size(); ++i) {
    const auto [q_wait, q_submit] = trained.q_pair(observations[i]);
    // Bitwise: batched rows are computed by the same per-row kernels.
    EXPECT_EQ(batched[i].score_wait, q_wait) << "row " << i;
    EXPECT_EQ(batched[i].score_submit, q_submit) << "row " << i;
    EXPECT_EQ(batched[i].action, trained.act_greedy(observations[i])) << "row " << i;
  }
}

TEST(BatchedInference, PgBatchedMatchesSingleBitwise) {
  TempDir dir("parity_pg");
  auto trained = make_pg(103);
  ASSERT_TRUE(core::save_agent(trained, dir.file("rtx__pg.ckpt")));

  ModelRegistry registry(test_registry_config());
  ASSERT_TRUE(registry.load_file(dir.file("rtx__pg.ckpt"), "rtx").ok);
  const auto model = registry.lookup({"rtx", "pg", "transformer"});
  ASSERT_NE(model, nullptr);

  util::Rng rng(9);
  std::vector<std::vector<float>> observations;
  for (int i = 0; i < 17; ++i) {
    std::vector<float> obs(model->observation_dim());
    for (auto& v : obs) v = static_cast<float>(rng.normal());
    observations.push_back(std::move(obs));
  }

  const auto batched = model->infer(observations);
  for (std::size_t i = 0; i < observations.size(); ++i) {
    EXPECT_EQ(batched[i].score_submit, trained.submit_probability(observations[i]))
        << "row " << i;
    EXPECT_EQ(batched[i].action, trained.act_greedy(observations[i])) << "row " << i;
  }
}

TEST(BatchedInference, Top1SparseRoutingMatchesDenseBitwise) {
  // Serving a Top-1 MoE checkpoint runs only each row's routed expert;
  // outputs must still be bitwise equal to the dense evaluate-then-select
  // forward the agent itself uses.
  TempDir dir("parity_top1");
  rl::DqnConfig cfg;
  cfg.foundation = nn::FoundationType::kMoE;
  cfg.net = test_net();
  cfg.net.moe_experts = 4;
  cfg.net.moe_top1 = true;
  rl::DqnAgent trained(cfg, 107);
  ASSERT_TRUE(core::save_agent(trained, dir.file("v100__top1.ckpt")));

  ModelRegistry registry(test_registry_config());
  const auto load = registry.load_file(dir.file("v100__top1.ckpt"), "v100");
  ASSERT_TRUE(load.ok) << load.error;
  const auto model = registry.lookup({"v100", "dqn", "moe"});
  ASSERT_NE(model, nullptr);
  EXPECT_TRUE(model->info().moe_top1);  // recovered from the v2 header

  util::Rng rng(11);
  std::vector<std::vector<float>> observations;
  for (int i = 0; i < 41; ++i) {  // enough rows to hit several experts
    std::vector<float> obs(model->observation_dim());
    for (auto& v : obs) v = static_cast<float>(rng.normal());
    observations.push_back(std::move(obs));
  }
  const auto batched = model->infer(observations);
  for (std::size_t i = 0; i < observations.size(); ++i) {
    const auto [q_wait, q_submit] = trained.q_pair(observations[i]);
    EXPECT_EQ(batched[i].score_wait, q_wait) << "row " << i;
    EXPECT_EQ(batched[i].score_submit, q_submit) << "row " << i;
  }
}

TEST(BatchedInference, RejectsWrongObservationDim) {
  TempDir dir("baddim");
  auto agent = make_dqn(5);
  ASSERT_TRUE(core::save_agent(agent, dir.file("v100__dqn.ckpt")));
  ModelRegistry registry(test_registry_config());
  ASSERT_TRUE(registry.load_file(dir.file("v100__dqn.ckpt"), "v100").ok);
  const auto model = registry.lookup({"v100", "dqn", "moe"});
  EXPECT_THROW(model->infer({std::vector<float>(3)}), std::invalid_argument);
}

// ------------------------------------------------------------------ Engine

TEST(InferenceEngine, BatchesQueuedRequestsInOneTick) {
  TempDir dir("engine");
  auto agent = make_dqn(21);
  ASSERT_TRUE(core::save_agent(agent, dir.file("v100__dqn.ckpt")));
  ModelRegistry registry(test_registry_config());
  ASSERT_TRUE(registry.load_file(dir.file("v100__dqn.ckpt"), "v100").ok);

  EngineConfig cfg;
  cfg.max_batch = 16;
  cfg.coalesce_wait = std::chrono::microseconds(0);
  BatchedInferenceEngine engine(registry, {"v100", "dqn", "moe"}, cfg);

  // Queue before starting: the first tick must coalesce all of them.
  const std::size_t dim = test_net().history_len * test_net().state_dim;
  std::vector<std::future<Decision>> futures;
  for (int i = 0; i < 10; ++i) futures.push_back(engine.submit(std::vector<float>(dim, 0.1f)));
  engine.start();
  for (auto& f : futures) EXPECT_NO_THROW(f.get());
  engine.drain();

  const auto stats = engine.stats();
  EXPECT_EQ(stats.requests, 10u);
  EXPECT_EQ(stats.max_batch, 10u);
  EXPECT_EQ(stats.ticks, 1u);
  EXPECT_EQ(stats.latency.count, 10u);
}

TEST(InferenceEngine, ThrowingCallbackFailsOnlyItsOwnRequest) {
  TempDir dir("badcb");
  auto agent = make_dqn(23);
  ASSERT_TRUE(core::save_agent(agent, dir.file("v100__dqn.ckpt")));
  ModelRegistry registry(test_registry_config());
  ASSERT_TRUE(registry.load_file(dir.file("v100__dqn.ckpt"), "v100").ok);
  BatchedInferenceEngine engine(registry, {"v100", "dqn", "moe"});
  engine.start();

  const std::size_t dim = test_net().history_len * test_net().state_dim;
  auto bad = engine.submit(std::vector<float>(dim, 0.1f),
                           [](const Decision&) { throw std::logic_error("callback boom"); });
  EXPECT_THROW(bad.get(), std::logic_error);
  // Engine thread survives and keeps serving.
  auto good = engine.submit(std::vector<float>(dim, 0.2f));
  EXPECT_NO_THROW(good.get());
  engine.drain();
}

TEST(InferenceEngine, NoModelFailsTheBatch) {
  BatchedInferenceEngine engine([] { return ModelSnapshot(); });
  engine.start();
  auto fut = engine.submit(std::vector<float>(4, 0.0f));
  EXPECT_THROW(fut.get(), std::runtime_error);
  engine.drain();
}

TEST(InferenceEngine, SubmitAfterDrainIsRejected) {
  TempDir dir("drain");
  auto agent = make_dqn(31);
  ASSERT_TRUE(core::save_agent(agent, dir.file("v100__dqn.ckpt")));
  ModelRegistry registry(test_registry_config());
  ASSERT_TRUE(registry.load_file(dir.file("v100__dqn.ckpt"), "v100").ok);
  BatchedInferenceEngine engine(registry, {"v100", "dqn", "moe"});
  engine.start();
  engine.drain();
  EXPECT_FALSE(engine.accepting());
  auto fut = engine.submit(std::vector<float>(4, 0.0f));
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(InferenceEngine, BoundedQueueRejectsWithBackpressure) {
  TempDir dir("backpressure");
  auto agent = make_dqn(33);
  ASSERT_TRUE(core::save_agent(agent, dir.file("v100__dqn.ckpt")));
  ModelRegistry registry(test_registry_config());
  ASSERT_TRUE(registry.load_file(dir.file("v100__dqn.ckpt"), "v100").ok);

  EngineConfig cfg;
  cfg.max_queue = 4;
  cfg.coalesce_wait = std::chrono::microseconds(0);
  BatchedInferenceEngine engine(registry, {"v100", "dqn", "moe"}, cfg);

  // Engine not started: the ring fills deterministically.
  const std::size_t dim = test_net().history_len * test_net().state_dim;
  std::vector<std::future<Decision>> queued;
  for (int i = 0; i < 4; ++i) queued.push_back(engine.submit(std::vector<float>(dim, 0.1f)));
  EXPECT_EQ(engine.queue_depth(), 4u);

  auto over = engine.submit(std::vector<float>(dim, 0.1f));
  EXPECT_THROW(over.get(), BackpressureRejected);

  Decision out;
  std::vector<float> obs(dim, 0.2f);
  EXPECT_EQ(engine.try_decide_blocking(obs, out),
            BatchedInferenceEngine::SubmitResult::kRejectedBackpressure);
  EXPECT_EQ(obs.size(), dim);  // rejected submission hands the buffer back
  EXPECT_EQ(engine.stats().rejected, 2u);

  // The queued four are unharmed and get served once the engine runs.
  engine.start();
  for (auto& f : queued) EXPECT_NO_THROW(f.get());
  engine.drain();
  EXPECT_EQ(engine.stats().requests, 4u);
}

TEST(InferenceEngine, TruncatedModelOutputFailsWholeBatchLoudly) {
  // A model returning fewer decisions than observations (e.g. a broken
  // hot-reload) must fail every request in the batch with a descriptive
  // error — never index out of bounds or serve a partial batch.
  auto model = std::make_shared<const StubModel>(4, /*short_batch=*/true);
  EngineConfig cfg;
  cfg.coalesce_wait = std::chrono::microseconds(0);
  cfg.use_thread_pool = false;
  BatchedInferenceEngine engine([model] { return ModelSnapshot(model); }, cfg);

  std::vector<std::future<Decision>> futures;
  for (int i = 0; i < 3; ++i) futures.push_back(engine.submit(std::vector<float>(4, 1.0f)));
  engine.start();
  for (auto& f : futures) {
    try {
      f.get();
      FAIL() << "truncated batch must fail";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos) << e.what();
    }
  }
  engine.drain();
  const auto stats = engine.stats();
  EXPECT_EQ(stats.requests, 3u);
  // Latency reflects SERVED decisions only — the failed batch recorded none.
  EXPECT_EQ(stats.latency.count, 0u);
}

// ------------------------------------------- Pooled async path (ISSUE 10)

TEST(InferenceEngine, PooledAsyncMatchesBlockingAndRecyclesTokens) {
  auto model = std::make_shared<const StubModel>(4);
  EngineConfig cfg;
  cfg.coalesce_wait = std::chrono::microseconds(0);
  cfg.use_thread_pool = false;
  BatchedInferenceEngine engine([model] { return ModelSnapshot(model); }, cfg);
  engine.start();

  // Sequential pooled decides recycle ONE completion token forever.
  std::vector<float> obs;
  for (int i = 0; i < 100; ++i) {
    obs.assign(4, i % 2 ? 1.0f : -1.0f);
    AsyncDecision handle;
    ASSERT_EQ(engine.submit_pooled(obs, handle), BatchedInferenceEngine::SubmitResult::kOk);
    ASSERT_TRUE(handle.valid());
    const Decision d = handle.get();
    EXPECT_EQ(d.action, i % 2 ? 1 : 0);
    EXPECT_FALSE(handle.valid());  // get() is single-shot
  }
  EXPECT_EQ(engine.tokens_created(), 1u);

  // A pipelined window grows the pool to at most the window size and then
  // stays flat across repetitions (the allocation audit bench_serve_soak
  // gates; here we pin the exact pool-size bound).
  std::vector<AsyncDecision> window(8);
  for (int rep = 0; rep < 5; ++rep) {
    for (auto& handle : window) {
      obs.assign(4, 1.0f);
      ASSERT_EQ(engine.submit_pooled(obs, handle), BatchedInferenceEngine::SubmitResult::kOk);
    }
    for (auto& handle : window) EXPECT_EQ(handle.get().action, 1);
  }
  EXPECT_LE(engine.tokens_created(), 9u);  // 1 sequential + <= 8 in flight
  engine.drain();
  EXPECT_EQ(engine.stats().requests, 140u);
}

TEST(InferenceEngine, PooledAsyncBackpressureAndDrainLeaveHandleInvalid) {
  auto model = std::make_shared<const StubModel>(4);
  EngineConfig cfg;
  cfg.max_queue = 2;
  cfg.coalesce_wait = std::chrono::microseconds(0);
  cfg.use_thread_pool = false;
  BatchedInferenceEngine engine([model] { return ModelSnapshot(model); }, cfg);

  // Engine not started: the ring fills deterministically.
  std::vector<float> obs(4, 1.0f);
  AsyncDecision a, b, over;
  ASSERT_EQ(engine.submit_pooled(obs, a), BatchedInferenceEngine::SubmitResult::kOk);
  obs.assign(4, 1.0f);
  ASSERT_EQ(engine.submit_pooled(obs, b), BatchedInferenceEngine::SubmitResult::kOk);
  obs.assign(4, 1.0f);
  EXPECT_EQ(engine.submit_pooled(obs, over),
            BatchedInferenceEngine::SubmitResult::kRejectedBackpressure);
  EXPECT_FALSE(over.valid());        // rejection never arms the handle
  EXPECT_EQ(obs.size(), 4u);         // the observation buffer came back
  EXPECT_EQ(engine.stats().rejected, 1u);

  engine.start();
  EXPECT_EQ(a.get().action, 1);
  EXPECT_EQ(b.get().action, 1);
  engine.drain();

  AsyncDecision after;
  obs.assign(4, 1.0f);
  EXPECT_EQ(engine.submit_pooled(obs, after), BatchedInferenceEngine::SubmitResult::kDraining);
  EXPECT_FALSE(after.valid());
}

TEST(InferenceEngine, AbandonedPooledHandleReturnsItsTokenSafely) {
  auto model = std::make_shared<const StubModel>(4);
  EngineConfig cfg;
  cfg.coalesce_wait = std::chrono::microseconds(0);
  cfg.use_thread_pool = false;
  BatchedInferenceEngine engine([model] { return ModelSnapshot(model); }, cfg);
  engine.start();

  std::vector<float> obs;
  {
    // Destroyed without get(): the token must drain back to the pool
    // without blocking destruction forever or corrupting the ring.
    obs.assign(4, 1.0f);
    AsyncDecision abandoned;
    ASSERT_EQ(engine.submit_pooled(obs, abandoned),
              BatchedInferenceEngine::SubmitResult::kOk);
  }
  // The engine keeps serving and the recycled token pool stays bounded.
  for (int i = 0; i < 16; ++i) {
    obs.assign(4, -1.0f);
    AsyncDecision handle;
    ASSERT_EQ(engine.submit_pooled(obs, handle), BatchedInferenceEngine::SubmitResult::kOk);
    EXPECT_EQ(handle.get().action, 0);
  }
  EXPECT_LE(engine.tokens_created(), 2u);
  engine.drain();
}

TEST(InferenceEngine, PooledAsyncFailedBatchRethrowsOnGet) {
  EngineConfig cfg;
  cfg.coalesce_wait = std::chrono::microseconds(0);
  cfg.use_thread_pool = false;
  BatchedInferenceEngine engine([] { return ModelSnapshot(); }, cfg);
  engine.start();
  std::vector<float> obs(4, 0.0f);
  AsyncDecision handle;
  ASSERT_EQ(engine.submit_pooled(obs, handle), BatchedInferenceEngine::SubmitResult::kOk);
  EXPECT_THROW(handle.get(), std::runtime_error);
  engine.drain();
}

TEST(ProvisioningService, PooledAsyncDecidesMatchBlockingBitwise) {
  TempDir dir("pooled");
  auto agent = make_dqn(41);
  ASSERT_TRUE(core::save_agent(agent, dir.file("v100__dqn.ckpt")));
  ModelRegistry registry(test_registry_config());
  ASSERT_TRUE(registry.load_file(dir.file("v100__dqn.ckpt"), "v100").ok);

  ServiceConfig cfg;
  cfg.history_len = test_net().history_len;
  cfg.engine.coalesce_wait = std::chrono::microseconds(0);
  ProvisioningService service(registry, {"v100", "dqn", "moe"}, cfg);
  service.start();
  const auto id = service.open_session();

  // A decision never mutates the ring, so on the same history the
  // blocking, pooled-async and throwing-pooled paths must agree bitwise.
  for (std::uint64_t t = 0; t < 10; ++t) {
    service.observe(id, make_sample(id, t), make_ctx(id));
    const Decision blocking = service.decide(id);
    AsyncDecision handle;
    ASSERT_EQ(service.try_decide_async(id, handle),
              BatchedInferenceEngine::SubmitResult::kOk);
    const Decision pooled = handle.get();
    const Decision convenience = service.decide_async_pooled(id).get();
    EXPECT_EQ(pooled.action, blocking.action);
    EXPECT_EQ(pooled.score_submit, blocking.score_submit);
    EXPECT_EQ(pooled.score_wait, blocking.score_wait);
    EXPECT_EQ(convenience.action, blocking.action);
    EXPECT_EQ(convenience.score_submit, blocking.score_submit);
    EXPECT_EQ(convenience.score_wait, blocking.score_wait);
  }
  // Served accounting counts every pooled completion exactly once.
  EXPECT_EQ(service.report().decisions, 30u);

  service.close_session(id);
  AsyncDecision handle;
  EXPECT_THROW((void)service.try_decide_async(id, handle), std::out_of_range);
  EXPECT_THROW((void)service.decide_async_pooled(id), std::out_of_range);
  service.drain_and_stop();
  EXPECT_THROW((void)service.decide_async_pooled(service.open_session()), std::runtime_error);
}

// --------------------------------------------------------------- Hot reload

TEST(ModelRegistry, HotReloadUnderConcurrentRequests) {
  TempDir dir("hotreload");
  auto a = make_dqn(41);
  auto b = make_dqn(42);  // same architecture, different weights
  ASSERT_TRUE(core::save_agent(a, dir.file("hot__a.ckpt")));
  ASSERT_TRUE(core::save_agent(b, dir.file("hot__b.ckpt")));

  ModelRegistry registry(test_registry_config());
  ASSERT_TRUE(registry.load_file(dir.file("hot__a.ckpt"), "hot").ok);
  const ModelKey key{"hot", "dqn", "moe"};

  ServiceConfig cfg;
  cfg.history_len = test_net().history_len;
  cfg.engine.max_batch = 8;
  cfg.engine.coalesce_wait = std::chrono::microseconds(50);
  ProvisioningService service(registry, key, cfg);
  service.start();

  constexpr int kClients = 4;
  constexpr int kDecisionsPerClient = 40;
  std::atomic<int> failures{0};
  std::mutex versions_mutex;
  std::set<std::uint64_t> versions_seen;

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const SessionId id = service.open_session();
      for (int t = 0; t < kDecisionsPerClient; ++t) {
        service.observe(id, make_sample(static_cast<std::uint64_t>(c), t),
                        make_ctx(static_cast<std::uint64_t>(c)));
        try {
          const Decision d = service.decide(id);
          std::lock_guard<std::mutex> lock(versions_mutex);
          versions_seen.insert(d.model_version);
        } catch (...) {
          failures.fetch_add(1);
        }
      }
    });
  }

  // Hot-reload between the two checkpoint versions while clients decide.
  std::uint64_t last_version = 0;
  for (int r = 0; r < 24; ++r) {
    const auto res = registry.load_file(
        dir.file(r % 2 == 0 ? "hot__b.ckpt" : "hot__a.ckpt"), "hot");
    ASSERT_TRUE(res.ok) << res.error;
    last_version = res.version;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (auto& t : clients) t.join();
  service.drain_and_stop();

  EXPECT_EQ(failures.load(), 0);
  // Requests were served across multiple model versions without dropping.
  EXPECT_GE(versions_seen.size(), 2u);
  const auto current = registry.lookup(key);
  ASSERT_NE(current, nullptr);
  EXPECT_EQ(current->version(), last_version);
  const auto report = service.report();
  EXPECT_EQ(report.decisions, static_cast<std::uint64_t>(kClients * kDecisionsPerClient));
}

// ----------------------------------------------------------------- Service

TEST(ProvisioningService, ManyConcurrentSessionsKeepCorrectHistories) {
  TempDir dir("sessions");
  auto agent = make_dqn(51);
  ASSERT_TRUE(core::save_agent(agent, dir.file("v100__dqn.ckpt")));
  ModelRegistry registry(test_registry_config());
  ASSERT_TRUE(registry.load_file(dir.file("v100__dqn.ckpt"), "v100").ok);

  ServiceConfig cfg;
  cfg.history_len = test_net().history_len;
  cfg.engine.max_batch = 32;
  ProvisioningService service(registry, {"v100", "dqn", "moe"}, cfg);
  service.start();

  constexpr std::size_t kSessions = 128;  // >= 100 concurrent sessions
  constexpr std::size_t kSteps = 9;       // > history_len: ring wraps

  std::vector<SessionId> ids;
  for (std::size_t s = 0; s < kSessions; ++s) ids.push_back(service.open_session());
  EXPECT_EQ(service.session_count(), kSessions);

  // Feed every session its own stream from concurrent clients, one decision
  // per step, all funneling through the shared batched engine.
  std::vector<std::vector<int>> actions(kSessions);
  {
    std::vector<std::thread> feeders;
    const std::size_t kThreads = 8;
    for (std::size_t w = 0; w < kThreads; ++w) {
      feeders.emplace_back([&, w] {
        for (std::size_t s = w; s < kSessions; s += kThreads) {
          for (std::size_t t = 0; t < kSteps; ++t) {
            service.observe(ids[s], make_sample(s, t), make_ctx(s));
            actions[s].push_back(service.decide(ids[s]).action);
          }
        }
      });
    }
    for (auto& t : feeders) t.join();
  }

  // Per-session history must equal a standalone encoder fed the same
  // stream, and the decisions must match the agent served directly.
  for (std::size_t s = 0; s < kSessions; ++s) {
    rl::StateEncoder reference(cfg.history_len);
    for (std::size_t t = 0; t < kSteps; ++t) reference.push(make_sample(s, t), make_ctx(s));
    EXPECT_EQ(service.session_history(ids[s]), reference.flatten(0.0f)) << "session " << s;
    EXPECT_EQ(service.session_frames_seen(ids[s]), kSteps);
    EXPECT_EQ(actions[s].back(), agent.act_greedy(reference.flatten(0.0f))) << "session " << s;
  }

  const auto report = service.report();
  EXPECT_EQ(report.decisions, kSessions * kSteps);
  EXPECT_EQ(report.engine.requests, kSessions * kSteps);
  EXPECT_GE(report.engine.max_batch, 2u);  // batching actually happened
  service.drain_and_stop();
}

TEST(ProvisioningService, DeterministicSessionReplay) {
  TempDir dir("replay");
  auto agent = make_dqn(61);
  ASSERT_TRUE(core::save_agent(agent, dir.file("v100__dqn.ckpt")));
  ModelRegistry registry(test_registry_config());
  ASSERT_TRUE(registry.load_file(dir.file("v100__dqn.ckpt"), "v100").ok);

  const auto run_once = [&] {
    ServiceConfig cfg;
    cfg.history_len = test_net().history_len;
    ProvisioningService service(registry, {"v100", "dqn", "moe"}, cfg);
    service.start();
    std::vector<std::vector<int>> all_actions;
    std::vector<SessionId> ids;
    for (std::size_t s = 0; s < 12; ++s) ids.push_back(service.open_session());
    for (std::size_t s = 0; s < ids.size(); ++s) {
      std::vector<int> actions;
      for (std::size_t t = 0; t < 10; ++t) {
        service.observe(ids[s], make_sample(s, t), make_ctx(s));
        actions.push_back(service.decide(ids[s]).action);
      }
      all_actions.push_back(std::move(actions));
    }
    service.drain_and_stop();
    return all_actions;
  };

  // Same seed, same streams -> bit-identical decision sequences.
  EXPECT_EQ(run_once(), run_once());
}

TEST(ProvisioningService, MetricsTextExposesPrometheusCountersAndLatency) {
  TempDir dir("metrics");
  auto agent = make_dqn(71);
  ASSERT_TRUE(core::save_agent(agent, dir.file("v100__dqn.ckpt")));
  ModelRegistry registry(test_registry_config());
  ASSERT_TRUE(registry.load_file(dir.file("v100__dqn.ckpt"), "v100").ok);

  ServiceConfig cfg;
  cfg.history_len = test_net().history_len;
  ProvisioningService service(registry, {"v100", "dqn", "moe"}, cfg);
  service.start();
  const SessionId id = service.open_session();
  for (std::size_t t = 0; t < 5; ++t) {
    service.observe(id, make_sample(0, t), make_ctx(0));
    service.decide(id);
  }
  service.drain_and_stop();

  const std::string text = service.metrics_text();
  EXPECT_NE(text.find("# TYPE mirage_serve_decisions_total counter"), std::string::npos) << text;
  EXPECT_NE(text.find("mirage_serve_decisions_total 5"), std::string::npos) << text;
  EXPECT_NE(text.find("mirage_serve_sessions_total 1"), std::string::npos);
  EXPECT_NE(text.find("mirage_serve_latency_seconds{quantile=\"0.99\"}"), std::string::npos);
  EXPECT_NE(text.find("mirage_serve_latency_seconds{quantile=\"0.999\"}"), std::string::npos);
  EXPECT_NE(text.find("mirage_serve_latency_seconds_count 5"), std::string::npos);
  EXPECT_NE(text.find("mirage_serve_session_shards"), std::string::npos);
  EXPECT_NE(text.find("mirage_serve_rejected_backpressure_total 0"), std::string::npos);
  // The service exposition appends the process-wide obs registry, so span
  // histograms (serve_batch at minimum) ride along.
  EXPECT_NE(text.find("obs_span_seconds_serve_batch"), std::string::npos);
}

TEST(ProvisioningService, GracefulDrainCompletesInFlight) {
  TempDir dir("gdrain");
  auto agent = make_dqn(71);
  ASSERT_TRUE(core::save_agent(agent, dir.file("v100__dqn.ckpt")));
  ModelRegistry registry(test_registry_config());
  ASSERT_TRUE(registry.load_file(dir.file("v100__dqn.ckpt"), "v100").ok);

  ServiceConfig cfg;
  cfg.history_len = test_net().history_len;
  cfg.engine.coalesce_wait = std::chrono::microseconds(2000);
  ProvisioningService service(registry, {"v100", "dqn", "moe"}, cfg);

  const SessionId id = service.open_session();
  service.observe(id, make_sample(1, 0), make_ctx(1));

  // Queue decisions while the engine thread is not yet running, then start
  // and immediately drain: every queued request must still be answered.
  std::vector<std::future<Decision>> in_flight;
  for (int i = 0; i < 20; ++i) in_flight.push_back(service.decide_async(id));
  service.start();
  service.drain_and_stop();
  for (auto& f : in_flight) EXPECT_NO_THROW(f.get());

  // After the drain new work is rejected, loudly.
  auto rejected = service.decide_async(id);
  EXPECT_THROW(rejected.get(), std::runtime_error);
}

TEST(ProvisioningService, UnknownAndClosedSessionsThrow) {
  TempDir dir("badsess");
  auto agent = make_dqn(81);
  ASSERT_TRUE(core::save_agent(agent, dir.file("v100__dqn.ckpt")));
  ModelRegistry registry(test_registry_config());
  ASSERT_TRUE(registry.load_file(dir.file("v100__dqn.ckpt"), "v100").ok);

  ServiceConfig cfg;
  cfg.history_len = test_net().history_len;
  ProvisioningService service(registry, {"v100", "dqn", "moe"}, cfg);
  service.start();
  EXPECT_THROW(service.decide(999), std::out_of_range);
  const SessionId id = service.open_session();
  service.close_session(id);
  EXPECT_THROW(service.observe(id, make_sample(0, 0), make_ctx(0)), std::out_of_range);
  service.drain_and_stop();
}

TEST(ProvisioningService, HistoryLenMismatchFailsLoudly) {
  TempDir dir("klen");
  auto agent = make_dqn(91);
  ASSERT_TRUE(core::save_agent(agent, dir.file("v100__dqn.ckpt")));
  ModelRegistry registry(test_registry_config());
  ASSERT_TRUE(registry.load_file(dir.file("v100__dqn.ckpt"), "v100").ok);

  ServiceConfig cfg;
  cfg.history_len = test_net().history_len + 3;  // wrong ring size
  ProvisioningService service(registry, {"v100", "dqn", "moe"}, cfg);
  service.start();
  const SessionId id = service.open_session();
  service.observe(id, make_sample(0, 0), make_ctx(0));
  EXPECT_THROW(service.decide(id), std::invalid_argument);
  service.drain_and_stop();
}

TEST(ProvisioningService, DecideThrowsBackpressureWhenEngineSaturated) {
  TempDir dir("svc_bp");
  auto agent = make_dqn(93);
  ASSERT_TRUE(core::save_agent(agent, dir.file("v100__dqn.ckpt")));
  ModelRegistry registry(test_registry_config());
  ASSERT_TRUE(registry.load_file(dir.file("v100__dqn.ckpt"), "v100").ok);

  ServiceConfig cfg;
  cfg.history_len = test_net().history_len;
  cfg.engine.max_queue = 1;
  ProvisioningService service(registry, {"v100", "dqn", "moe"}, cfg);
  // Deliberately not started: the single queue slot stays occupied.
  const SessionId id = service.open_session();
  service.observe(id, make_sample(0, 0), make_ctx(0));
  auto parked = service.decide_async(id);  // fills the only slot

  EXPECT_THROW(service.decide(id), BackpressureRejected);
  Decision out;
  EXPECT_EQ(service.try_decide(id, out),
            BatchedInferenceEngine::SubmitResult::kRejectedBackpressure);

  service.start();
  EXPECT_NO_THROW(parked.get());
  service.drain_and_stop();
  const auto report = service.report();
  EXPECT_EQ(report.decisions, 1u);  // rejected requests never counted served
  EXPECT_EQ(report.engine.rejected, 2u);
  const std::string text = service.metrics_text();
  EXPECT_NE(text.find("mirage_serve_rejected_backpressure_total 2"), std::string::npos) << text;
}

// --------------------------------------------------------------------- TTL

TEST(ProvisioningService, TtlEvictsIdleSessionsLazilyAndOnSweep) {
  TempDir dir("ttl");
  auto agent = make_dqn(95);
  ASSERT_TRUE(core::save_agent(agent, dir.file("v100__dqn.ckpt")));
  ModelRegistry registry(test_registry_config());
  ASSERT_TRUE(registry.load_file(dir.file("v100__dqn.ckpt"), "v100").ok);

  ServiceConfig cfg;
  cfg.history_len = test_net().history_len;
  cfg.shards = 4;
  cfg.session_ttl_seconds = 0.03;
  cfg.sweep_interval_seconds = 100.0;  // background sweeper effectively off
  ProvisioningService service(registry, {"v100", "dqn", "moe"}, cfg);
  service.start();

  std::vector<SessionId> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(service.open_session());
  EXPECT_EQ(service.session_count(), 8u);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));

  // Lazy path: touching an expired session reaps it and reports it exactly
  // like a closed one (std::out_of_range, not a crash or a stale serve).
  EXPECT_THROW(service.observe(ids[0], make_sample(0, 0), make_ctx(0)), std::out_of_range);
  // Explicit sweep reaps the remaining seven across all four shards.
  EXPECT_EQ(service.evict_expired(), 7u);
  EXPECT_EQ(service.session_count(), 0u);
  EXPECT_EQ(service.report().evictions, 8u);

  // A session kept warm by periodic access survives several TTL windows.
  const SessionId live = service.open_session();
  for (int i = 0; i < 5; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    EXPECT_NO_THROW(service.observe(live, make_sample(9, i), make_ctx(9)));
  }
  EXPECT_EQ(service.evict_expired(), 0u);
  EXPECT_EQ(service.session_count(), 1u);
  service.drain_and_stop();
}

TEST(ProvisioningService, BackgroundSweeperReapsAbandonedSessions) {
  TempDir dir("sweeper");
  auto agent = make_dqn(97);
  ASSERT_TRUE(core::save_agent(agent, dir.file("v100__dqn.ckpt")));
  ModelRegistry registry(test_registry_config());
  ASSERT_TRUE(registry.load_file(dir.file("v100__dqn.ckpt"), "v100").ok);

  ServiceConfig cfg;
  cfg.history_len = test_net().history_len;
  cfg.shards = 4;
  cfg.session_ttl_seconds = 0.02;
  cfg.sweep_interval_seconds = 0.005;
  ProvisioningService service(registry, {"v100", "dqn", "moe"}, cfg);
  service.start();
  for (int i = 0; i < 12; ++i) service.open_session();

  // Nobody ever touches these sessions again; the one-shard-per-tick
  // background sweep alone must reap all of them.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (service.session_count() > 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(service.session_count(), 0u);
  EXPECT_EQ(service.report().evictions, 12u);
  service.drain_and_stop();
}

TEST(ProvisioningService, IdleAwareSweeperSkipsQuietTablesButStillReaps) {
  TempDir dir("idlesweep");
  auto agent = make_dqn(99);
  ASSERT_TRUE(core::save_agent(agent, dir.file("v100__dqn.ckpt")));
  ModelRegistry registry(test_registry_config());
  ASSERT_TRUE(registry.load_file(dir.file("v100__dqn.ckpt"), "v100").ok);

  ServiceConfig cfg;
  cfg.history_len = test_net().history_len;
  cfg.shards = 1;  // every tick visits the same table
  cfg.session_ttl_seconds = 0.06;
  cfg.sweep_interval_seconds = 0.002;
  cfg.sweep_idle_threshold = 1024;
  ProvisioningService service(registry, {"v100", "dqn", "moe"}, cfg);
  service.start();
  for (int i = 0; i < 6; ++i) service.open_session();

  // Quiet phase: nothing expires for 60ms, so after the first full scan
  // establishes the expiry hint, ticks skip instead of rescanning.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const auto quiet = service.report();
  EXPECT_GT(quiet.sweep_wakeups, 0u);
  EXPECT_GT(quiet.sweep_skipped, 0u);
  EXPECT_EQ(quiet.evictions, 0u);
  // Every tick of this single-shard table declines its scan, so the
  // sweeper stretches its wakeup interval (bounded backoff).
  EXPECT_GT(quiet.sweep_stretches, 0u);

  // The skip cadence must not delay actual expiry: once the hint passes,
  // the sweeper rescans and reaps every abandoned session.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (service.session_count() > 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(service.session_count(), 0u);
  EXPECT_EQ(service.report().evictions, 6u);
  EXPECT_GE(service.report().sweep_skipped, quiet.sweep_skipped);
  service.drain_and_stop();

  // Control: sweep_idle_threshold=0 disables skipping for non-empty
  // tables — the same quiet phase full-scans every tick.
  ServiceConfig busy_cfg = cfg;
  busy_cfg.session_ttl_seconds = 10.0;
  busy_cfg.sweep_idle_threshold = 0;
  ProvisioningService busy(registry, {"v100", "dqn", "moe"}, busy_cfg);
  busy.start();
  for (int i = 0; i < 4; ++i) busy.open_session();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const auto report = busy.report();
  EXPECT_GT(report.sweep_wakeups, 0u);
  EXPECT_EQ(report.sweep_skipped, 0u);
  // No skips means no quiet streak: the wakeup interval never stretches.
  EXPECT_EQ(report.sweep_stretches, 0u);
  busy.drain_and_stop();
}

TEST(ProvisioningService, MetricsTextPassesLintAndCarriesLiveGauges) {
  TempDir dir("lint");
  auto agent = make_dqn(101);
  ASSERT_TRUE(core::save_agent(agent, dir.file("v100__dqn.ckpt")));
  ModelRegistry registry(test_registry_config());
  ASSERT_TRUE(registry.load_file(dir.file("v100__dqn.ckpt"), "v100").ok);

  ServiceConfig cfg;
  cfg.history_len = test_net().history_len;
  cfg.shards = 2;
  ProvisioningService service(registry, {"v100", "dqn", "moe"}, cfg);
  service.start();
  const SessionId id = service.open_session();
  for (std::size_t t = 0; t < 5; ++t) {
    service.observe(id, make_sample(0, t), make_ctx(0));
    service.decide(id);
  }
  // No report()/sweeper needed: the scrape itself refreshes the gauges.
  const std::string text = service.metrics_text();
  EXPECT_NE(text.find("mirage_serve_engine_queue_depth"), std::string::npos) << text;
  EXPECT_NE(text.find("mirage_serve_shard_sessions_0"), std::string::npos);
  EXPECT_NE(text.find("mirage_serve_shard_sessions_1"), std::string::npos);
  EXPECT_NE(text.find("mirage_serve_reject_rate"), std::string::npos);

  // The whole exposition — handwritten families plus the registry dump —
  // must survive the strict linter (duplicate families, broken histogram
  // invariants or malformed exemplars would all fail here).
  std::string error;
  EXPECT_TRUE(obs::lint_prometheus_exposition(text, &error)) << error << "\n" << text;
  service.drain_and_stop();
}

TEST(ProvisioningService, RequestJourneysLinkTraceEventsAndExemplars) {
  TempDir dir("journey");
  auto agent = make_dqn(103);
  ASSERT_TRUE(core::save_agent(agent, dir.file("v100__dqn.ckpt")));
  ModelRegistry registry(test_registry_config());
  ASSERT_TRUE(registry.load_file(dir.file("v100__dqn.ckpt"), "v100").ok);

  obs::set_enabled(true);
  obs::global_trace().clear();
  decision_latency_histogram().reset();

  ServiceConfig cfg;
  cfg.history_len = test_net().history_len;
  ProvisioningService service(registry, {"v100", "dqn", "moe"}, cfg);
  service.start();
  const SessionId id = service.open_session();
  for (std::size_t t = 0; t < 20; ++t) {
    service.observe(id, make_sample(0, t), make_ctx(0));
    service.decide(id);
  }
  service.drain_and_stop();

  // Every decision minted a request id and left begin/enqueue/complete
  // events whose arg0 ids line up across the journey.
  std::set<std::int64_t> begun, enqueued, completed;
  for (const auto& ev : obs::global_trace().snapshot()) {
    switch (ev.kind) {
      case obs::TraceEventKind::kRequestBegin: begun.insert(ev.arg0); break;
      case obs::TraceEventKind::kRequestEnqueue: enqueued.insert(ev.arg0); break;
      case obs::TraceEventKind::kRequestComplete:
        completed.insert(ev.arg0);
        EXPECT_GE(ev.dur, 0);  // journey slice [enqueue, served]
        break;
      default: break;
    }
  }
  EXPECT_EQ(begun.size(), 20u);
  for (const auto req : completed) {
    EXPECT_TRUE(begun.count(req)) << "completed id " << req << " never began";
    EXPECT_TRUE(enqueued.count(req)) << "completed id " << req << " never enqueued";
  }
  EXPECT_EQ(completed.size(), 20u);

  // The latency histogram's tail exemplar names one of those journeys: the
  // aggregate p99.9 bucket points at a concrete request id in the ring.
  const auto ex = decision_latency_histogram().exemplar_for_percentile(99.9);
  ASSERT_TRUE(ex.valid);
  EXPECT_TRUE(begun.count(static_cast<std::int64_t>(ex.id)))
      << "exemplar id " << ex.id << " is not a traced request";
}

TEST(ProvisioningService, SloBreachFiresHealthEndpointAndFlightBundle) {
  TempDir dir("slofire");
  TempDir flight_dir("slofire_bundles");
  auto agent = make_dqn(105);
  ASSERT_TRUE(core::save_agent(agent, dir.file("v100__dqn.ckpt")));
  ModelRegistry registry(test_registry_config());
  ASSERT_TRUE(registry.load_file(dir.file("v100__dqn.ckpt"), "v100").ok);

  obs::FlightRecorderConfig frc;
  frc.directory = flight_dir.path.string();
  obs::flight_recorder().configure(frc);

  ServiceConfig cfg;
  cfg.history_len = test_net().history_len;
  cfg.sweep_interval_seconds = 0.005;
  cfg.slo.enabled = true;
  cfg.slo.latency_target_seconds = 1e-9;  // unmeetable: every decision is bad
  cfg.slo.latency_quantile = 50.0;
  cfg.slo.short_window_seconds = 0.05;
  cfg.slo.long_window_seconds = 0.1;
  cfg.slo.resolve_seconds = 60.0;
  cfg.slo.dump_on_fire = true;
  ProvisioningService service(registry, {"v100", "dqn", "moe"}, cfg);

  // Before start the SLO engine is unconfigured.
  EXPECT_NE(service.health_text().find("status: unconfigured"), std::string::npos);
  EXPECT_TRUE(service.slo_statuses().empty());

  service.start();
  const SessionId id = service.open_session();
  std::uint64_t fires = 0;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (fires == 0 && std::chrono::steady_clock::now() < deadline) {
    service.observe(id, make_sample(0, 0), make_ctx(0));
    service.decide(id);
    for (const auto& st : service.slo_statuses()) fires += st.fires;
  }
  ASSERT_GT(fires, 0u) << "forced SLO breach never fired";
  const std::string health = service.health_text();
  EXPECT_NE(health.find("status: firing"), std::string::npos) << health;
  EXPECT_NE(health.find("slo serve_latency"), std::string::npos) << health;
  service.drain_and_stop();

  // The fire hook dumped a validated bundle into the configured directory.
  std::string newest;
  for (const auto& e : fs::directory_iterator(flight_dir.path)) {
    const auto name = e.path().filename().string();
    if (e.is_directory() && name.rfind("bundle_", 0) == 0 && name > newest) newest = name;
  }
  ASSERT_FALSE(newest.empty()) << "SLO fire produced no flight bundle";
  EXPECT_NE(newest.find("slo_serve_latency"), std::string::npos);
  std::string error;
  EXPECT_TRUE(obs::FlightRecorder::validate_bundle(
      (flight_dir.path / newest).string(), &error))
      << error;
}

// -------------------------------------------------------------- Race storm

TEST(ProvisioningService, ShardedRaceStormStaysConsistent) {
  TempDir dir("storm");
  auto agent = make_dqn(99);
  ASSERT_TRUE(core::save_agent(agent, dir.file("v100__dqn.ckpt")));
  ModelRegistry registry(test_registry_config());
  ASSERT_TRUE(registry.load_file(dir.file("v100__dqn.ckpt"), "v100").ok);

  ServiceConfig cfg;
  cfg.history_len = test_net().history_len;
  cfg.shards = 8;                    // force real sharding on any host
  cfg.session_ttl_seconds = 0.03;    // evictions race live traffic
  cfg.sweep_interval_seconds = 0.005;
  cfg.engine.max_batch = 16;
  cfg.engine.coalesce_wait = std::chrono::microseconds(100);
  ProvisioningService service(registry, {"v100", "dqn", "moe"}, cfg);
  service.start();

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> served{0};
  std::atomic<std::uint64_t> gone{0};  // closed/evicted under our feet
  std::mutex pool_mutex;
  std::vector<SessionId> pool;

  // Workers mix every session-layer operation on a shared id pool while
  // the TTL sweeper runs hot: open, observe, future-based and pooled
  // async decides, blocking decide and close all race across shards. The invariants are (a) no
  // crash/UB, (b) the only session-level failure is std::out_of_range,
  // (c) served-decision accounting balances exactly.
  const auto worker = [&](unsigned seed) {
    util::Rng rng(seed);
    while (!stop.load(std::memory_order_relaxed)) {
      const auto pick = rng.uniform_int(0, 9);
      if (pick < 3) {
        const SessionId id = service.open_session();
        std::lock_guard<std::mutex> lock(pool_mutex);
        pool.push_back(id);
        continue;
      }
      SessionId id = 0;
      {
        std::lock_guard<std::mutex> lock(pool_mutex);
        if (pool.empty()) continue;
        id = pool[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
      }
      try {
        if (pick < 5) {
          service.observe(id, make_sample(id, 0), make_ctx(id));
        } else if (pick == 5) {
          // Pooled async path races the future-based one below.
          AsyncDecision handle;
          if (service.try_decide_async(id, handle) ==
              BatchedInferenceEngine::SubmitResult::kOk) {
            handle.get();
            served.fetch_add(1, std::memory_order_relaxed);
          }
        } else if (pick < 8) {
          service.decide_async(id).get();
          served.fetch_add(1, std::memory_order_relaxed);
        } else if (pick == 8) {
          Decision d;
          if (service.try_decide(id, d) == BatchedInferenceEngine::SubmitResult::kOk) {
            served.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          service.close_session(id);
        }
      } catch (const std::out_of_range&) {
        gone.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };
  std::vector<std::thread> threads;
  for (unsigned w = 0; w < 8; ++w) threads.emplace_back(worker, 1234 + w);
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  stop.store(true);
  for (auto& t : threads) t.join();
  service.drain_and_stop();

  const auto report = service.report();
  EXPECT_EQ(report.shards, 8u);
  EXPECT_GT(served.load(), 0u);
  EXPECT_EQ(report.decisions, served.load());  // exact: served only, each once
  EXPECT_EQ(report.open_sessions, service.session_count());
  EXPECT_GE(report.total_sessions, report.open_sessions + report.evictions);
}

TEST(ProvisioningService, CloseSessionRacesInFlightDecide) {
  TempDir dir("closerace");
  auto agent = make_dqn(101);
  ASSERT_TRUE(core::save_agent(agent, dir.file("v100__dqn.ckpt")));
  ModelRegistry registry(test_registry_config());
  ASSERT_TRUE(registry.load_file(dir.file("v100__dqn.ckpt"), "v100").ok);

  ServiceConfig cfg;
  cfg.history_len = test_net().history_len;
  cfg.engine.coalesce_wait = std::chrono::microseconds(5000);
  ProvisioningService service(registry, {"v100", "dqn", "moe"}, cfg);
  service.start();
  const SessionId id = service.open_session();
  service.observe(id, make_sample(0, 0), make_ctx(0));

  // Close while the decision is (likely) still queued: the session object
  // is kept alive by the in-flight request, which completes normally.
  auto fut = service.decide_async(id);
  service.close_session(id);
  EXPECT_NO_THROW(fut.get());
  service.drain_and_stop();
  EXPECT_EQ(service.report().decisions, 1u);
  EXPECT_EQ(service.session_count(), 0u);
}

TEST(ProvisioningService, DrainWhileSubmittingShedsCleanly) {
  TempDir dir("drainrace");
  auto agent = make_dqn(103);
  ASSERT_TRUE(core::save_agent(agent, dir.file("v100__dqn.ckpt")));
  ModelRegistry registry(test_registry_config());
  ASSERT_TRUE(registry.load_file(dir.file("v100__dqn.ckpt"), "v100").ok);

  ServiceConfig cfg;
  cfg.history_len = test_net().history_len;
  cfg.shards = 4;
  ProvisioningService service(registry, {"v100", "dqn", "moe"}, cfg);
  service.start();

  std::vector<SessionId> ids;
  for (int i = 0; i < 4; ++i) ids.push_back(service.open_session());
  std::atomic<std::uint64_t> served{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      for (;;) {
        try {
          service.decide(ids[static_cast<std::size_t>(c)]);
          served.fetch_add(1, std::memory_order_relaxed);
        } catch (const std::runtime_error&) {
          return;  // draining (or backpressure near shutdown): clean shed
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  service.drain_and_stop();  // races the submitting clients
  for (auto& t : clients) t.join();

  const auto report = service.report();
  EXPECT_GT(served.load(), 0u);
  EXPECT_EQ(report.decisions, served.load());
}

TEST(ProvisioningService, ShardCountIsReportedAndConfigurable) {
  auto model = std::make_shared<const StubModel>(test_net().history_len * rl::kFrameDim);
  ServiceConfig cfg;
  cfg.history_len = test_net().history_len;
  cfg.shards = 5;
  ProvisioningService service(ModelSnapshot(model), cfg);
  service.start();
  for (int i = 0; i < 10; ++i) service.open_session();
  const auto report = service.report();
  EXPECT_EQ(report.shards, 5u);
  EXPECT_EQ(report.open_sessions, 10u);
  const std::string text = service.metrics_text();
  EXPECT_NE(text.find("mirage_serve_session_shards 5"), std::string::npos) << text;
  EXPECT_NE(text.find("mirage_serve_evictions_total 0"), std::string::npos);
  service.drain_and_stop();
}

}  // namespace
}  // namespace mirage::serve

// Tests for the online provisioning subsystem (src/serve): registry
// load/validate/hot-reload, batched-vs-B=1 inference parity, concurrent
// session bookkeeping, deterministic replay and graceful drain.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <set>
#include <stdexcept>
#include <thread>

#include "core/checkpoint.hpp"
#include "rl/state_encoder.hpp"
#include "serve/inference_engine.hpp"
#include "serve/model_registry.hpp"
#include "serve/service.hpp"
#include "util/rng.hpp"

namespace mirage::serve {
namespace {

namespace fs = std::filesystem;

// Compact architecture shared by every test agent AND the registry
// defaults (non-header knobs must agree for reconstruction).
nn::FoundationConfig test_net() {
  nn::FoundationConfig net;
  net.history_len = 6;
  net.state_dim = rl::kFrameDim;
  net.d_model = 16;
  net.num_heads = 2;
  net.num_layers = 1;
  net.ffn_hidden = 32;
  net.moe_experts = 2;
  return net;
}

RegistryConfig test_registry_config() {
  RegistryConfig cfg;
  cfg.net_defaults = test_net();
  return cfg;
}

rl::DqnAgent make_dqn(std::uint64_t seed, nn::FoundationType type = nn::FoundationType::kMoE) {
  rl::DqnConfig cfg;
  cfg.foundation = type;
  cfg.net = test_net();
  return rl::DqnAgent(cfg, seed);
}

rl::PgAgent make_pg(std::uint64_t seed) {
  rl::PgConfig cfg;
  cfg.foundation = nn::FoundationType::kTransformer;
  cfg.net = test_net();
  return rl::PgAgent(cfg, seed);
}

/// Unique scratch dir per test, removed on destruction.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag) {
    path = fs::temp_directory_path() / ("mirage_serve_" + tag);
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string file(const std::string& name) const { return (path / name).string(); }
};

/// Deterministic synthetic cluster snapshot stream (per session, per step).
sim::StateSample make_sample(std::uint64_t session, std::uint64_t step) {
  util::Rng rng(session * 1000003ull + step * 7919ull + 1);
  sim::StateSample s;
  s.now = static_cast<util::SimTime>(step) * 600;
  s.total_nodes = 88;
  s.free_nodes = static_cast<std::int32_t>(rng.uniform_int(0, 88));
  const auto nq = rng.uniform_int(0, 10);
  for (std::int64_t i = 0; i < nq; ++i) {
    s.queued_sizes.push_back(static_cast<double>(rng.uniform_int(1, 8)));
    s.queued_ages.push_back(rng.uniform(0.0, 86400.0));
    s.queued_limits.push_back(rng.uniform(3600.0, 172800.0));
  }
  const auto nr = rng.uniform_int(0, 12);
  for (std::int64_t i = 0; i < nr; ++i) {
    s.running_sizes.push_back(static_cast<double>(rng.uniform_int(1, 8)));
    s.running_elapsed.push_back(rng.uniform(0.0, 172800.0));
    s.running_limits.push_back(rng.uniform(3600.0, 172800.0));
  }
  return s;
}

rl::JobPairContext make_ctx(std::uint64_t session) {
  rl::JobPairContext ctx;
  ctx.pred_nodes = 1 + static_cast<std::int32_t>(session % 4);
  ctx.pred_elapsed = static_cast<util::SimTime>(session % 7) * util::kHour;
  return ctx;
}

// ---------------------------------------------------------------- Registry

TEST(ModelRegistry, ScanLoadsAndKeysCheckpoints) {
  TempDir dir("scan");
  auto dqn = make_dqn(11);
  auto pg = make_pg(13);
  ASSERT_TRUE(core::save_agent(dqn, dir.file("v100__moe_dqn.ckpt")));
  ASSERT_TRUE(core::save_agent(pg, dir.file("rtx__tf_pg.ckpt")));

  ModelRegistry registry(test_registry_config());
  std::vector<ModelRegistry::LoadResult> results;
  EXPECT_EQ(registry.scan_directory(dir.path.string(), &results), 2u);
  EXPECT_EQ(registry.size(), 2u);
  for (const auto& r : results) EXPECT_TRUE(r.ok) << r.error;

  const auto dqn_model = registry.lookup({"v100", "dqn", "moe"});
  ASSERT_NE(dqn_model, nullptr);
  EXPECT_TRUE(dqn_model->is_dqn());
  EXPECT_EQ(dqn_model->info().history_len, test_net().history_len);
  EXPECT_EQ(dqn_model->info().d_model, test_net().d_model);

  const auto pg_model = registry.find("rtx", "pg");
  ASSERT_NE(pg_model, nullptr);
  EXPECT_FALSE(pg_model->is_dqn());
  EXPECT_EQ(pg_model->key().foundation, "transformer");

  EXPECT_EQ(registry.lookup({"a100", "dqn", "moe"}), nullptr);
  EXPECT_EQ(registry.keys().size(), 2u);
}

TEST(ModelRegistry, RejectsArchitectureMismatch) {
  TempDir dir("mismatch");
  // Same header fields, different depth (num_layers is not in the header,
  // so only the parameter-shape validation can catch it).
  rl::DqnConfig deep;
  deep.foundation = nn::FoundationType::kMoE;
  deep.net = test_net();
  deep.net.num_layers = 3;
  rl::DqnAgent agent(deep, 5);
  ASSERT_TRUE(core::save_agent(agent, dir.file("v100__deep.ckpt")));

  ModelRegistry registry(test_registry_config());
  const auto res = registry.load_file(dir.file("v100__deep.ckpt"), "v100");
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("architecture mismatch"), std::string::npos) << res.error;
  EXPECT_EQ(registry.size(), 0u);
}

TEST(ModelRegistry, RejectsWrongFrameWidthAndGarbage) {
  TempDir dir("reject");
  rl::DqnConfig narrow;
  narrow.foundation = nn::FoundationType::kMoE;
  narrow.net = test_net();
  narrow.net.state_dim = 10;  // not the serving frame width
  rl::DqnAgent agent(narrow, 5);
  ASSERT_TRUE(core::save_agent(agent, dir.file("v100__narrow.ckpt")));
  {
    std::ofstream out(dir.file("v100__junk.ckpt"), std::ios::binary);
    out << "not a checkpoint at all";
  }

  ModelRegistry registry(test_registry_config());
  std::vector<ModelRegistry::LoadResult> results;
  EXPECT_EQ(registry.scan_directory(dir.path.string(), &results), 0u);
  EXPECT_EQ(registry.size(), 0u);
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) EXPECT_FALSE(r.ok);
}

TEST(ModelRegistry, RejectsZeroExpertMoEHeader) {
  // A crafted header with moe_experts=0 must be refused before any agent
  // is constructed (it would index an empty expert table when served).
  TempDir dir("zeroexp");
  {
    std::ofstream out(dir.file("v100__zero.ckpt"), std::ios::binary);
    out << "MIRAGE-CKPT-2 dqn moe 6 " << rl::kFrameDim << " 16 0 1\n"
        << "garbage parameter bytes";
  }
  ModelRegistry registry(test_registry_config());
  const auto res = registry.load_file(dir.file("v100__zero.ckpt"), "v100");
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("degenerate"), std::string::npos) << res.error;
}

TEST(ModelRegistry, ScanOfMissingDirectoryReportsError) {
  ModelRegistry registry(test_registry_config());
  std::vector<ModelRegistry::LoadResult> results;
  EXPECT_EQ(registry.scan_directory("/no/such/dir/anywhere", &results), 0u);
  ASSERT_EQ(results.size(), 1u);  // not silently "empty directory"
  EXPECT_FALSE(results[0].ok);
  EXPECT_NE(results[0].error.find("/no/such/dir/anywhere"), std::string::npos);
}

TEST(ModelRegistry, ClusterParsedFromFilename) {
  EXPECT_EQ(cluster_from_filename("/models/v100__moe_dqn.ckpt"), "v100");
  EXPECT_EQ(cluster_from_filename("rtx__a__b.ckpt"), "rtx");
  EXPECT_EQ(cluster_from_filename("/models/plain.ckpt"), "plain");
}

// ------------------------------------------------------------------ Parity

TEST(BatchedInference, DqnBatchedMatchesSingleBitwise) {
  TempDir dir("parity_dqn");
  auto trained = make_dqn(101);
  ASSERT_TRUE(core::save_agent(trained, dir.file("v100__dqn.ckpt")));

  ModelRegistry registry(test_registry_config());
  ASSERT_TRUE(registry.load_file(dir.file("v100__dqn.ckpt"), "v100").ok);
  const auto model = registry.lookup({"v100", "dqn", "moe"});
  ASSERT_NE(model, nullptr);

  util::Rng rng(7);
  std::vector<std::vector<float>> observations;
  for (int i = 0; i < 33; ++i) {  // odd size: exercises non-full tiles
    std::vector<float> obs(model->observation_dim());
    for (auto& v : obs) v = static_cast<float>(rng.normal());
    observations.push_back(std::move(obs));
  }

  const auto batched = model->infer(observations);
  ASSERT_EQ(batched.size(), observations.size());
  for (std::size_t i = 0; i < observations.size(); ++i) {
    const auto [q_wait, q_submit] = trained.q_pair(observations[i]);
    // Bitwise: batched rows are computed by the same per-row kernels.
    EXPECT_EQ(batched[i].score_wait, q_wait) << "row " << i;
    EXPECT_EQ(batched[i].score_submit, q_submit) << "row " << i;
    EXPECT_EQ(batched[i].action, trained.act_greedy(observations[i])) << "row " << i;
  }
}

TEST(BatchedInference, PgBatchedMatchesSingleBitwise) {
  TempDir dir("parity_pg");
  auto trained = make_pg(103);
  ASSERT_TRUE(core::save_agent(trained, dir.file("rtx__pg.ckpt")));

  ModelRegistry registry(test_registry_config());
  ASSERT_TRUE(registry.load_file(dir.file("rtx__pg.ckpt"), "rtx").ok);
  const auto model = registry.lookup({"rtx", "pg", "transformer"});
  ASSERT_NE(model, nullptr);

  util::Rng rng(9);
  std::vector<std::vector<float>> observations;
  for (int i = 0; i < 17; ++i) {
    std::vector<float> obs(model->observation_dim());
    for (auto& v : obs) v = static_cast<float>(rng.normal());
    observations.push_back(std::move(obs));
  }

  const auto batched = model->infer(observations);
  for (std::size_t i = 0; i < observations.size(); ++i) {
    EXPECT_EQ(batched[i].score_submit, trained.submit_probability(observations[i]))
        << "row " << i;
    EXPECT_EQ(batched[i].action, trained.act_greedy(observations[i])) << "row " << i;
  }
}

TEST(BatchedInference, Top1SparseRoutingMatchesDenseBitwise) {
  // Serving a Top-1 MoE checkpoint runs only each row's routed expert;
  // outputs must still be bitwise equal to the dense evaluate-then-select
  // forward the agent itself uses.
  TempDir dir("parity_top1");
  rl::DqnConfig cfg;
  cfg.foundation = nn::FoundationType::kMoE;
  cfg.net = test_net();
  cfg.net.moe_experts = 4;
  cfg.net.moe_top1 = true;
  rl::DqnAgent trained(cfg, 107);
  ASSERT_TRUE(core::save_agent(trained, dir.file("v100__top1.ckpt")));

  ModelRegistry registry(test_registry_config());
  const auto load = registry.load_file(dir.file("v100__top1.ckpt"), "v100");
  ASSERT_TRUE(load.ok) << load.error;
  const auto model = registry.lookup({"v100", "dqn", "moe"});
  ASSERT_NE(model, nullptr);
  EXPECT_TRUE(model->info().moe_top1);  // recovered from the v2 header

  util::Rng rng(11);
  std::vector<std::vector<float>> observations;
  for (int i = 0; i < 41; ++i) {  // enough rows to hit several experts
    std::vector<float> obs(model->observation_dim());
    for (auto& v : obs) v = static_cast<float>(rng.normal());
    observations.push_back(std::move(obs));
  }
  const auto batched = model->infer(observations);
  for (std::size_t i = 0; i < observations.size(); ++i) {
    const auto [q_wait, q_submit] = trained.q_pair(observations[i]);
    EXPECT_EQ(batched[i].score_wait, q_wait) << "row " << i;
    EXPECT_EQ(batched[i].score_submit, q_submit) << "row " << i;
  }
}

TEST(BatchedInference, RejectsWrongObservationDim) {
  TempDir dir("baddim");
  auto agent = make_dqn(5);
  ASSERT_TRUE(core::save_agent(agent, dir.file("v100__dqn.ckpt")));
  ModelRegistry registry(test_registry_config());
  ASSERT_TRUE(registry.load_file(dir.file("v100__dqn.ckpt"), "v100").ok);
  const auto model = registry.lookup({"v100", "dqn", "moe"});
  EXPECT_THROW(model->infer({std::vector<float>(3)}), std::invalid_argument);
}

// ------------------------------------------------------------------ Engine

TEST(InferenceEngine, BatchesQueuedRequestsInOneTick) {
  TempDir dir("engine");
  auto agent = make_dqn(21);
  ASSERT_TRUE(core::save_agent(agent, dir.file("v100__dqn.ckpt")));
  ModelRegistry registry(test_registry_config());
  ASSERT_TRUE(registry.load_file(dir.file("v100__dqn.ckpt"), "v100").ok);

  EngineConfig cfg;
  cfg.max_batch = 16;
  cfg.coalesce_wait = std::chrono::microseconds(0);
  BatchedInferenceEngine engine(registry, {"v100", "dqn", "moe"}, cfg);

  // Queue before starting: the first tick must coalesce all of them.
  const std::size_t dim = test_net().history_len * test_net().state_dim;
  std::vector<std::future<Decision>> futures;
  for (int i = 0; i < 10; ++i) futures.push_back(engine.submit(std::vector<float>(dim, 0.1f)));
  engine.start();
  for (auto& f : futures) EXPECT_NO_THROW(f.get());
  engine.drain();

  const auto stats = engine.stats();
  EXPECT_EQ(stats.requests, 10u);
  EXPECT_EQ(stats.max_batch, 10u);
  EXPECT_EQ(stats.ticks, 1u);
  EXPECT_EQ(stats.latency.count, 10u);
}

TEST(InferenceEngine, ThrowingCallbackFailsOnlyItsOwnRequest) {
  TempDir dir("badcb");
  auto agent = make_dqn(23);
  ASSERT_TRUE(core::save_agent(agent, dir.file("v100__dqn.ckpt")));
  ModelRegistry registry(test_registry_config());
  ASSERT_TRUE(registry.load_file(dir.file("v100__dqn.ckpt"), "v100").ok);
  BatchedInferenceEngine engine(registry, {"v100", "dqn", "moe"});
  engine.start();

  const std::size_t dim = test_net().history_len * test_net().state_dim;
  auto bad = engine.submit(std::vector<float>(dim, 0.1f),
                           [](const Decision&) { throw std::logic_error("callback boom"); });
  EXPECT_THROW(bad.get(), std::logic_error);
  // Engine thread survives and keeps serving.
  auto good = engine.submit(std::vector<float>(dim, 0.2f));
  EXPECT_NO_THROW(good.get());
  engine.drain();
}

TEST(InferenceEngine, NoModelFailsTheBatch) {
  BatchedInferenceEngine engine([] { return ModelSnapshot(); });
  engine.start();
  auto fut = engine.submit(std::vector<float>(4, 0.0f));
  EXPECT_THROW(fut.get(), std::runtime_error);
  engine.drain();
}

TEST(InferenceEngine, SubmitAfterDrainIsRejected) {
  TempDir dir("drain");
  auto agent = make_dqn(31);
  ASSERT_TRUE(core::save_agent(agent, dir.file("v100__dqn.ckpt")));
  ModelRegistry registry(test_registry_config());
  ASSERT_TRUE(registry.load_file(dir.file("v100__dqn.ckpt"), "v100").ok);
  BatchedInferenceEngine engine(registry, {"v100", "dqn", "moe"});
  engine.start();
  engine.drain();
  EXPECT_FALSE(engine.accepting());
  auto fut = engine.submit(std::vector<float>(4, 0.0f));
  EXPECT_THROW(fut.get(), std::runtime_error);
}

// --------------------------------------------------------------- Hot reload

TEST(ModelRegistry, HotReloadUnderConcurrentRequests) {
  TempDir dir("hotreload");
  auto a = make_dqn(41);
  auto b = make_dqn(42);  // same architecture, different weights
  ASSERT_TRUE(core::save_agent(a, dir.file("hot__a.ckpt")));
  ASSERT_TRUE(core::save_agent(b, dir.file("hot__b.ckpt")));

  ModelRegistry registry(test_registry_config());
  ASSERT_TRUE(registry.load_file(dir.file("hot__a.ckpt"), "hot").ok);
  const ModelKey key{"hot", "dqn", "moe"};

  ServiceConfig cfg;
  cfg.history_len = test_net().history_len;
  cfg.engine.max_batch = 8;
  cfg.engine.coalesce_wait = std::chrono::microseconds(50);
  ProvisioningService service(registry, key, cfg);
  service.start();

  constexpr int kClients = 4;
  constexpr int kDecisionsPerClient = 40;
  std::atomic<int> failures{0};
  std::mutex versions_mutex;
  std::set<std::uint64_t> versions_seen;

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const SessionId id = service.open_session();
      for (int t = 0; t < kDecisionsPerClient; ++t) {
        service.observe(id, make_sample(static_cast<std::uint64_t>(c), t),
                        make_ctx(static_cast<std::uint64_t>(c)));
        try {
          const Decision d = service.decide(id);
          std::lock_guard<std::mutex> lock(versions_mutex);
          versions_seen.insert(d.model_version);
        } catch (...) {
          failures.fetch_add(1);
        }
      }
    });
  }

  // Hot-reload between the two checkpoint versions while clients decide.
  std::uint64_t last_version = 0;
  for (int r = 0; r < 24; ++r) {
    const auto res = registry.load_file(
        dir.file(r % 2 == 0 ? "hot__b.ckpt" : "hot__a.ckpt"), "hot");
    ASSERT_TRUE(res.ok) << res.error;
    last_version = res.version;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (auto& t : clients) t.join();
  service.drain_and_stop();

  EXPECT_EQ(failures.load(), 0);
  // Requests were served across multiple model versions without dropping.
  EXPECT_GE(versions_seen.size(), 2u);
  const auto current = registry.lookup(key);
  ASSERT_NE(current, nullptr);
  EXPECT_EQ(current->version(), last_version);
  const auto report = service.report();
  EXPECT_EQ(report.decisions, static_cast<std::uint64_t>(kClients * kDecisionsPerClient));
}

// ----------------------------------------------------------------- Service

TEST(ProvisioningService, ManyConcurrentSessionsKeepCorrectHistories) {
  TempDir dir("sessions");
  auto agent = make_dqn(51);
  ASSERT_TRUE(core::save_agent(agent, dir.file("v100__dqn.ckpt")));
  ModelRegistry registry(test_registry_config());
  ASSERT_TRUE(registry.load_file(dir.file("v100__dqn.ckpt"), "v100").ok);

  ServiceConfig cfg;
  cfg.history_len = test_net().history_len;
  cfg.engine.max_batch = 32;
  ProvisioningService service(registry, {"v100", "dqn", "moe"}, cfg);
  service.start();

  constexpr std::size_t kSessions = 128;  // >= 100 concurrent sessions
  constexpr std::size_t kSteps = 9;       // > history_len: ring wraps

  std::vector<SessionId> ids;
  for (std::size_t s = 0; s < kSessions; ++s) ids.push_back(service.open_session());
  EXPECT_EQ(service.session_count(), kSessions);

  // Feed every session its own stream from concurrent clients, one decision
  // per step, all funneling through the shared batched engine.
  std::vector<std::vector<int>> actions(kSessions);
  {
    std::vector<std::thread> feeders;
    const std::size_t kThreads = 8;
    for (std::size_t w = 0; w < kThreads; ++w) {
      feeders.emplace_back([&, w] {
        for (std::size_t s = w; s < kSessions; s += kThreads) {
          for (std::size_t t = 0; t < kSteps; ++t) {
            service.observe(ids[s], make_sample(s, t), make_ctx(s));
            actions[s].push_back(service.decide(ids[s]).action);
          }
        }
      });
    }
    for (auto& t : feeders) t.join();
  }

  // Per-session history must equal a standalone encoder fed the same
  // stream, and the decisions must match the agent served directly.
  for (std::size_t s = 0; s < kSessions; ++s) {
    rl::StateEncoder reference(cfg.history_len);
    for (std::size_t t = 0; t < kSteps; ++t) reference.push(make_sample(s, t), make_ctx(s));
    EXPECT_EQ(service.session_history(ids[s]), reference.flatten(0.0f)) << "session " << s;
    EXPECT_EQ(service.session_frames_seen(ids[s]), kSteps);
    EXPECT_EQ(actions[s].back(), agent.act_greedy(reference.flatten(0.0f))) << "session " << s;
  }

  const auto report = service.report();
  EXPECT_EQ(report.decisions, kSessions * kSteps);
  EXPECT_EQ(report.engine.requests, kSessions * kSteps);
  EXPECT_GE(report.engine.max_batch, 2u);  // batching actually happened
  service.drain_and_stop();
}

TEST(ProvisioningService, DeterministicSessionReplay) {
  TempDir dir("replay");
  auto agent = make_dqn(61);
  ASSERT_TRUE(core::save_agent(agent, dir.file("v100__dqn.ckpt")));
  ModelRegistry registry(test_registry_config());
  ASSERT_TRUE(registry.load_file(dir.file("v100__dqn.ckpt"), "v100").ok);

  const auto run_once = [&] {
    ServiceConfig cfg;
    cfg.history_len = test_net().history_len;
    ProvisioningService service(registry, {"v100", "dqn", "moe"}, cfg);
    service.start();
    std::vector<std::vector<int>> all_actions;
    std::vector<SessionId> ids;
    for (std::size_t s = 0; s < 12; ++s) ids.push_back(service.open_session());
    for (std::size_t s = 0; s < ids.size(); ++s) {
      std::vector<int> actions;
      for (std::size_t t = 0; t < 10; ++t) {
        service.observe(ids[s], make_sample(s, t), make_ctx(s));
        actions.push_back(service.decide(ids[s]).action);
      }
      all_actions.push_back(std::move(actions));
    }
    service.drain_and_stop();
    return all_actions;
  };

  // Same seed, same streams -> bit-identical decision sequences.
  EXPECT_EQ(run_once(), run_once());
}

TEST(ProvisioningService, MetricsTextExposesPrometheusCountersAndLatency) {
  TempDir dir("metrics");
  auto agent = make_dqn(71);
  ASSERT_TRUE(core::save_agent(agent, dir.file("v100__dqn.ckpt")));
  ModelRegistry registry(test_registry_config());
  ASSERT_TRUE(registry.load_file(dir.file("v100__dqn.ckpt"), "v100").ok);

  ServiceConfig cfg;
  cfg.history_len = test_net().history_len;
  ProvisioningService service(registry, {"v100", "dqn", "moe"}, cfg);
  service.start();
  const SessionId id = service.open_session();
  for (std::size_t t = 0; t < 5; ++t) {
    service.observe(id, make_sample(0, t), make_ctx(0));
    service.decide(id);
  }
  service.drain_and_stop();

  const std::string text = service.metrics_text();
  EXPECT_NE(text.find("# TYPE mirage_serve_decisions_total counter"), std::string::npos) << text;
  EXPECT_NE(text.find("mirage_serve_decisions_total 5"), std::string::npos) << text;
  EXPECT_NE(text.find("mirage_serve_sessions_total 1"), std::string::npos);
  EXPECT_NE(text.find("mirage_serve_latency_seconds{quantile=\"0.99\"}"), std::string::npos);
  EXPECT_NE(text.find("mirage_serve_latency_seconds_count 5"), std::string::npos);
  // The service exposition appends the process-wide obs registry, so span
  // histograms (serve_batch at minimum) ride along.
  EXPECT_NE(text.find("obs_span_seconds_serve_batch"), std::string::npos);
}

TEST(ProvisioningService, GracefulDrainCompletesInFlight) {
  TempDir dir("gdrain");
  auto agent = make_dqn(71);
  ASSERT_TRUE(core::save_agent(agent, dir.file("v100__dqn.ckpt")));
  ModelRegistry registry(test_registry_config());
  ASSERT_TRUE(registry.load_file(dir.file("v100__dqn.ckpt"), "v100").ok);

  ServiceConfig cfg;
  cfg.history_len = test_net().history_len;
  cfg.engine.coalesce_wait = std::chrono::microseconds(2000);
  ProvisioningService service(registry, {"v100", "dqn", "moe"}, cfg);

  const SessionId id = service.open_session();
  service.observe(id, make_sample(1, 0), make_ctx(1));

  // Queue decisions while the engine thread is not yet running, then start
  // and immediately drain: every queued request must still be answered.
  std::vector<std::future<Decision>> in_flight;
  for (int i = 0; i < 20; ++i) in_flight.push_back(service.decide_async(id));
  service.start();
  service.drain_and_stop();
  for (auto& f : in_flight) EXPECT_NO_THROW(f.get());

  // After the drain new work is rejected, loudly.
  auto rejected = service.decide_async(id);
  EXPECT_THROW(rejected.get(), std::runtime_error);
}

TEST(ProvisioningService, UnknownAndClosedSessionsThrow) {
  TempDir dir("badsess");
  auto agent = make_dqn(81);
  ASSERT_TRUE(core::save_agent(agent, dir.file("v100__dqn.ckpt")));
  ModelRegistry registry(test_registry_config());
  ASSERT_TRUE(registry.load_file(dir.file("v100__dqn.ckpt"), "v100").ok);

  ServiceConfig cfg;
  cfg.history_len = test_net().history_len;
  ProvisioningService service(registry, {"v100", "dqn", "moe"}, cfg);
  service.start();
  EXPECT_THROW(service.decide(999), std::out_of_range);
  const SessionId id = service.open_session();
  service.close_session(id);
  EXPECT_THROW(service.observe(id, make_sample(0, 0), make_ctx(0)), std::out_of_range);
  service.drain_and_stop();
}

TEST(ProvisioningService, HistoryLenMismatchFailsLoudly) {
  TempDir dir("klen");
  auto agent = make_dqn(91);
  ASSERT_TRUE(core::save_agent(agent, dir.file("v100__dqn.ckpt")));
  ModelRegistry registry(test_registry_config());
  ASSERT_TRUE(registry.load_file(dir.file("v100__dqn.ckpt"), "v100").ok);

  ServiceConfig cfg;
  cfg.history_len = test_net().history_len + 3;  // wrong ring size
  ProvisioningService service(registry, {"v100", "dqn", "moe"}, cfg);
  service.start();
  const SessionId id = service.open_session();
  service.observe(id, make_sample(0, 0), make_ctx(0));
  EXPECT_THROW(service.decide(id), std::invalid_argument);
  service.drain_and_stop();
}

}  // namespace
}  // namespace mirage::serve

// Tests for the core Mirage layer: load classification, heuristics,
// provisioner adapters, the evaluator, and the method registry.
#include <gtest/gtest.h>

#include "core/evaluator.hpp"
#include "core/methods.hpp"
#include "core/pipeline.hpp"
#include "core/provisioner.hpp"
#include "trace/generator.hpp"

namespace mirage::core {
namespace {

using trace::JobRecord;
using trace::Trace;
using util::kDay;
using util::kHour;
using util::kMinute;
using util::Rng;
using util::SimTime;

rl::EpisodeConfig quick_episode() {
  rl::EpisodeConfig ec;
  ec.job_runtime = 4 * kHour;
  ec.job_limit = 4 * kHour;
  ec.job_nodes = 1;
  ec.decision_interval = 10 * kMinute;
  ec.warmup = 2 * kHour;
  ec.history_len = 4;
  return ec;
}

// ------------------------------------------------------------- LoadClass

TEST(LoadClass, PaperBoundaries) {
  EXPECT_EQ(classify_load(13 * kHour), LoadClass::kHeavy);
  EXPECT_EQ(classify_load(12 * kHour), LoadClass::kMedium);  // "between 2 and 12"
  EXPECT_EQ(classify_load(2 * kHour), LoadClass::kMedium);
  EXPECT_EQ(classify_load(2 * kHour - 1), LoadClass::kLight);
  EXPECT_EQ(classify_load(0), LoadClass::kLight);
}

TEST(LoadClass, Names) {
  EXPECT_STREQ(load_class_name(LoadClass::kHeavy), "heavy");
  EXPECT_STREQ(load_class_name(LoadClass::kMedium), "medium");
  EXPECT_STREQ(load_class_name(LoadClass::kLight), "light");
}

// ------------------------------------------------------------ Heuristics

TEST(Heuristics, ReactiveNeverSubmits) {
  ReactiveProvisioner p;
  rl::ProvisionEnv env({}, 8, quick_episode(), kDay);
  Rng rng(1);
  EXPECT_EQ(p.decide(env, rng), 0);
}

TEST(Heuristics, ReactiveEpisodeEndsViaFallback) {
  ReactiveProvisioner p;
  rl::ProvisionEnv env({}, 8, quick_episode(), kDay);
  Rng rng(1);
  drive_episode(p, env, rng);
  EXPECT_TRUE(env.done());
  // Reactive submission happens exactly at predecessor end.
  EXPECT_EQ(env.outcome().overlap, 0);
}

TEST(Heuristics, AvgSubmitsWhenRemainingBelowAvgWait) {
  // Idle cluster -> recent average wait 0 -> only submits at the very end.
  AvgWaitProvisioner p;
  rl::ProvisionEnv env({}, 8, quick_episode(), kDay);
  Rng rng(2);
  EXPECT_EQ(p.decide(env, rng), 0);
}

TEST(Heuristics, WaitPredictionUsesPredictor) {
  // Predictor that always predicts an enormous wait -> submit immediately.
  WaitPredictionProvisioner eager("eager", [](std::span<const float>) { return 1000.0f; });
  rl::ProvisionEnv env({}, 8, quick_episode(), kDay);
  Rng rng(3);
  EXPECT_EQ(eager.decide(env, rng), 1);

  WaitPredictionProvisioner lazy("lazy", [](std::span<const float>) { return 0.0f; });
  EXPECT_EQ(lazy.decide(env, rng), 0);
}

TEST(Heuristics, DriveEpisodeWithEagerSubmitterOverlaps) {
  WaitPredictionProvisioner eager("eager", [](std::span<const float>) { return 1000.0f; });
  rl::ProvisionEnv env({}, 8, quick_episode(), kDay);
  Rng rng(4);
  drive_episode(eager, env, rng);
  EXPECT_TRUE(env.done());
  EXPECT_GT(env.outcome().overlap, 0);
}

// --------------------------------------------------------------- Methods

TEST(Methods, NamesAndPredicates) {
  EXPECT_EQ(method_name(Method::kMoeDqn), "MoE+DQN");
  EXPECT_EQ(all_methods().size(), 8u);
  EXPECT_TRUE(is_rl_method(Method::kTransformerPg));
  EXPECT_FALSE(is_rl_method(Method::kAvg));
  EXPECT_TRUE(is_statistical_method(Method::kXgboost));
  EXPECT_FALSE(is_statistical_method(Method::kMoePg));
}

// -------------------------------------------------------------- Evaluator

TEST(Evaluator, ReactiveAggregatesAndClassification) {
  trace::GeneratorOptions opt;
  opt.seed = 5;
  opt.job_count_scale = 0.3;
  trace::SyntheticTraceGenerator gen(trace::a100_preset(), opt);
  const auto full = gen.generate();

  EvalConfig ec;
  ec.episodes = 8;
  ec.parallel = false;
  Evaluator evaluator(full, 76, quick_episode(), ec);
  evaluator.prepare(10 * kDay, 60 * kDay);

  const auto& reactive = evaluator.reactive();
  EXPECT_EQ(reactive.overall.episodes, 8u);
  // Reactive never overlaps by construction.
  EXPECT_DOUBLE_EQ(reactive.overall.overlap_hours.max(), 0.0);
  const auto hist = evaluator.load_histogram();
  EXPECT_EQ(hist[0] + hist[1] + hist[2], 8u);
}

TEST(Evaluator, EvaluateUsesTheSameAnchors) {
  trace::GeneratorOptions opt;
  opt.seed = 6;
  opt.job_count_scale = 0.3;
  trace::SyntheticTraceGenerator gen(trace::a100_preset(), opt);
  const auto full = gen.generate();

  EvalConfig ec;
  ec.episodes = 6;
  ec.parallel = false;
  Evaluator evaluator(full, 76, quick_episode(), ec);
  evaluator.prepare(10 * kDay, 60 * kDay);

  const auto eval = evaluator.evaluate(
      "always_wait", [] { return std::make_unique<ReactiveProvisioner>(); });
  EXPECT_EQ(eval.overall.episodes, 6u);
  // A never-submit policy is exactly the reactive baseline.
  EXPECT_NEAR(eval.overall.interruption_hours.mean(),
              evaluator.reactive().overall.interruption_hours.mean(), 1e-9);
}

TEST(Evaluator, ZeroInterruptionFraction) {
  LoadAggregate agg;
  EXPECT_DOUBLE_EQ(agg.zero_interruption_fraction(), 0.0);
  agg.episodes = 4;
  agg.zero_interruption = 3;
  EXPECT_DOUBLE_EQ(agg.zero_interruption_fraction(), 0.75);
}

TEST(Evaluator, FormatTableContainsMethodsAndCounts) {
  MethodEval e;
  e.method = "demo";
  e.by_load[0].episodes = 2;
  e.by_load[0].interruption_hours.add(1.0);
  e.by_load[0].interruption_hours.add(3.0);
  e.by_load[0].overlap_hours.add(0.0);
  e.by_load[0].overlap_hours.add(0.0);
  const auto table = format_eval_table({e});
  EXPECT_NE(table.find("demo"), std::string::npos);
  EXPECT_NE(table.find("2.00"), std::string::npos);  // mean interruption
}

// --------------------------------------------------------------- Pipeline

TEST(Pipeline, CompactConfigConsistency) {
  const auto cfg = PipelineConfig::compact(trace::a100_preset(), 8, 7);
  EXPECT_EQ(cfg.episode.job_nodes, 8);
  EXPECT_EQ(cfg.net.history_len, cfg.episode.history_len);
  EXPECT_EQ(cfg.net.state_dim, rl::kFrameDim);
}

TEST(Pipeline, HeuristicsNeedNoTraining) {
  auto cfg = PipelineConfig::compact(trace::a100_preset(), 1, 3);
  cfg.generator.job_count_scale = 0.2;
  cfg.eval.episodes = 4;
  MiragePipeline pipe(cfg);
  pipe.prepare();
  pipe.train(Method::kReactive);  // no-op, no throw
  pipe.train(Method::kAvg);
  const auto evals = pipe.evaluate({Method::kReactive, Method::kAvg});
  EXPECT_EQ(evals.size(), 2u);
  EXPECT_EQ(evals[0].method, "reactive");
  EXPECT_EQ(evals[0].overall.episodes, 4u);
}

TEST(Pipeline, TrainingWithoutOfflineDataThrows) {
  auto cfg = PipelineConfig::compact(trace::a100_preset(), 1, 3);
  MiragePipeline pipe(cfg);
  pipe.prepare();
  EXPECT_THROW(pipe.train(Method::kRandomForest), std::logic_error);
}

TEST(Pipeline, UntrainedFactoryThrows) {
  auto cfg = PipelineConfig::compact(trace::a100_preset(), 1, 3);
  MiragePipeline pipe(cfg);
  pipe.prepare();
  EXPECT_THROW(pipe.factory(Method::kXgboost), std::logic_error);
  EXPECT_THROW(pipe.factory(Method::kMoeDqn), std::logic_error);
  EXPECT_NO_THROW(pipe.factory(Method::kReactive));
}

TEST(Pipeline, SplitIs80To20) {
  auto cfg = PipelineConfig::compact(trace::a100_preset(), 1, 3);
  cfg.generator.job_count_scale = 0.1;
  MiragePipeline pipe(cfg);
  pipe.prepare();
  const double train_span = static_cast<double>(pipe.train_end() - pipe.train_begin());
  const double total_span = static_cast<double>(pipe.validation_end() - pipe.train_begin());
  EXPECT_NEAR(train_span / total_span, 0.8, 0.02);
}

}  // namespace
}  // namespace mirage::core

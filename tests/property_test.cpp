// Parameterized property sweeps across modules: invariants that must hold
// for any seed / shape / configuration, complementing the per-module
// example-based tests.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/dual_head.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "rl/env.hpp"
#include "rl/reward.hpp"
#include "scenario/scenario.hpp"
#include "sim/cluster_event.hpp"
#include "sim/fidelity.hpp"
#include "sim/reference_simulator.hpp"
#include "sim/simulator.hpp"
#include "trace/cleaning.hpp"
#include "trace/generator.hpp"
#include "trace/sampler.hpp"
#include "trace/trace_io.hpp"
#include "util/stats.hpp"

namespace mirage {
namespace {

using trace::JobRecord;
using trace::Trace;
using util::kDay;
using util::kHour;
using util::kMinute;
using util::Rng;
using util::SimTime;

// ------------------------------------------------ Percentile properties

class PercentileProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PercentileProperty, MonotoneInQ) {
  Rng rng(GetParam());
  std::vector<double> v(50);
  for (auto& x : v) x = rng.normal(0, 10);
  double prev = util::percentile(v, 0);
  for (double q = 5; q <= 100; q += 5) {
    const double cur = util::percentile(v, q);
    EXPECT_GE(cur, prev - 1e-12);
    prev = cur;
  }
}

TEST_P(PercentileProperty, BoundedByMinMax) {
  Rng rng(GetParam() ^ 0xbeef);
  std::vector<double> v(37);
  for (auto& x : v) x = rng.uniform(-5, 5);
  const auto s = util::five_number_summary(v);
  for (double q : {10.0, 33.0, 66.0, 90.0}) {
    const double p = util::percentile(v, q);
    EXPECT_GE(p, s[0]);
    EXPECT_LE(p, s[4]);
  }
}

TEST_P(PercentileProperty, WelfordMatchesTwoPass) {
  Rng rng(GetParam() ^ 0xfeed);
  util::RunningStats stats;
  std::vector<double> v(200);
  for (auto& x : v) {
    x = rng.lognormal(0, 2);
    stats.add(x);
  }
  double mean = 0;
  for (double x : v) mean += x;
  mean /= static_cast<double>(v.size());
  double var = 0;
  for (double x : v) var += (x - mean) * (x - mean);
  var /= static_cast<double>(v.size() - 1);
  EXPECT_NEAR(stats.mean(), mean, 1e-9 * std::max(1.0, std::abs(mean)));
  EXPECT_NEAR(stats.variance(), var, 1e-6 * std::max(1.0, var));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileProperty, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ------------------------------------------------------ Trace round trips

class TraceRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceRoundTrip, CsvPreservesEveryField) {
  trace::GeneratorOptions opt;
  opt.seed = GetParam();
  opt.job_count_scale = 0.05;
  trace::SyntheticTraceGenerator gen(trace::rtx_preset(), opt);
  const auto original = gen.generate_months(0, 1);
  const auto parsed = trace::from_csv(trace::to_csv(original));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ((*parsed)[i].job_id, original[i].job_id);
    EXPECT_EQ((*parsed)[i].job_name, original[i].job_name);
    EXPECT_EQ((*parsed)[i].user_id, original[i].user_id);
    EXPECT_EQ((*parsed)[i].submit_time, original[i].submit_time);
    EXPECT_EQ((*parsed)[i].time_limit, original[i].time_limit);
    EXPECT_EQ((*parsed)[i].num_nodes, original[i].num_nodes);
    EXPECT_EQ((*parsed)[i].actual_runtime, original[i].actual_runtime);
  }
}

TEST_P(TraceRoundTrip, CleaningIsIdempotent) {
  trace::GeneratorOptions opt;
  opt.seed = GetParam();
  opt.job_count_scale = 0.05;
  opt.inject_cleanable_rows = true;
  trace::SyntheticTraceGenerator gen(trace::v100_preset(), opt);
  const auto once = trace::clean_trace(gen.generate_months(0, 2), 88);
  trace::CleaningReport second;
  const auto twice = trace::clean_trace(once, 88, &second);
  EXPECT_EQ(twice.size(), once.size());
  EXPECT_EQ(second.oversize_dropped, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceRoundTrip, ::testing::Values(11, 22, 33, 44));

// -------------------------------------------------- Scheduler invariants

struct SchedCase {
  std::uint64_t seed;
  std::int32_t depth;
};

class SchedulerProperty : public ::testing::TestWithParam<SchedCase> {};

TEST_P(SchedulerProperty, NoCapacityViolationAnyDepth) {
  trace::GeneratorOptions opt;
  opt.seed = GetParam().seed;
  opt.job_count_scale = 0.08;
  trace::SyntheticTraceGenerator gen(trace::a100_preset(), opt);
  const auto workload = gen.generate_months(1, 3);
  sim::SchedulerConfig cfg;
  cfg.reservation_depth = GetParam().depth;
  const auto sched = sim::replay_trace(workload, 76, cfg);

  std::vector<std::pair<SimTime, std::int32_t>> deltas;
  for (const auto& j : sched) {
    ASSERT_TRUE(j.scheduled());
    EXPECT_GE(j.start_time, j.submit_time);
    deltas.emplace_back(j.start_time, j.num_nodes);
    deltas.emplace_back(j.end_time, -j.num_nodes);
  }
  std::sort(deltas.begin(), deltas.end(), [](auto& a, auto& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second < b.second;
  });
  std::int32_t busy = 0;
  for (const auto& [t, d] : deltas) {
    busy += d;
    EXPECT_LE(busy, 76);
  }
}

TEST_P(SchedulerProperty, DeeperReservationsNeverHurtTotalWait) {
  // More reservations = closer to conservative; mean wait may shift but
  // the schedule must stay feasible and complete every job. (A strict
  // wait ordering does not hold in general, so assert completion and a
  // sane wait bound instead.)
  trace::GeneratorOptions opt;
  opt.seed = GetParam().seed ^ 0x77;
  opt.job_count_scale = 0.08;
  trace::SyntheticTraceGenerator gen(trace::a100_preset(), opt);
  const auto workload = gen.generate_months(2, 3);  // the heavy month
  sim::SchedulerConfig cfg;
  cfg.reservation_depth = GetParam().depth;
  const auto sched = sim::replay_trace(workload, 76, cfg);
  std::size_t done = 0;
  for (const auto& j : sched) done += j.scheduled();
  EXPECT_EQ(done, workload.size());
}

INSTANTIATE_TEST_SUITE_P(Cases, SchedulerProperty,
                         ::testing::Values(SchedCase{1, 1}, SchedCase{1, 8}, SchedCase{2, 1},
                                           SchedCase{2, 8}, SchedCase{3, 16}, SchedCase{4, 4}));

// --------------------------------------- Invariants under injected events

class EventProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventProperty, CapacityInvariantsHoldUnderOutagesDrainsRestores) {
  // A scenario-style run with outage + drain + restore events; sampled at
  // a fine cadence, the cluster must always satisfy
  // free_nodes in [0, total_nodes], and afterwards no job may have started
  // before its submit time or while its nodes exceeded capacity.
  scenario::ScenarioSpec spec;
  spec.cluster = "a100";
  spec.months_begin = 0;
  spec.months_end = 1;
  spec.seed = 300 + GetParam();
  spec.job_count_scale = 0.05;
  const auto workload = scenario::build_workload(spec);

  Rng rng(GetParam());
  std::vector<sim::ClusterEvent> events;
  SimTime t = kDay + rng.uniform_int(0, kDay);
  std::int32_t offline = 0;
  for (int i = 0; i < 6; ++i) {
    const auto kind = rng.uniform_int(0, 2);
    sim::ClusterEvent ev;
    ev.time = t;
    if (kind == 2 && offline > 0) {
      ev.type = sim::ClusterEventType::kNodeRestore;
      ev.nodes = static_cast<std::int32_t>(rng.uniform_int(1, offline));
      offline -= ev.nodes;
    } else {
      ev.type = kind == 0 ? sim::ClusterEventType::kNodeDown : sim::ClusterEventType::kDrain;
      ev.nodes = static_cast<std::int32_t>(rng.uniform_int(1, 30));
      offline += ev.nodes;
    }
    events.push_back(ev);
    t += rng.uniform_int(kHour, 3 * kDay);
  }
  // Always restore at the end so queued work can finish.
  events.push_back({t, sim::ClusterEventType::kNodeRestore, offline + 4});

  sim::Simulator simulator(76, {});
  simulator.load_workload(workload);
  for (const auto& ev : events) simulator.schedule_cluster_event(ev);

  for (SimTime clock = 0; clock <= 31 * kDay; clock += 20 * kMinute) {
    simulator.run_until(clock);
    const std::int32_t total = simulator.total_nodes();
    const std::int32_t free = simulator.free_nodes();
    ASSERT_GE(free, 0) << "at t=" << clock;
    ASSERT_LE(free, total) << "at t=" << clock;
    ASSERT_GE(simulator.drain_pending(), 0);
  }
  simulator.run_to_completion();

  const auto schedule = simulator.export_schedule();
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    if (!schedule[i].scheduled()) continue;  // stranded by a capacity loss
    EXPECT_GE(schedule[i].start_time, schedule[i].submit_time) << i;
    EXPECT_GE(schedule[i].end_time, schedule[i].start_time) << i;
  }
}

TEST_P(EventProperty, BackfillNeverDelaysPinnedReservationUnderDrain) {
  // 4 nodes with a drain of 1 at t=5: J1 holds 2 nodes to t=100, the
  // 3-node J2 is the pinned blocker, and short J3 could backfill into the
  // remaining free node. Whatever the drain does, J2 must start no later
  // than it would without any backfill candidates present.
  const std::uint64_t seed = GetParam();
  sim::SchedulerConfig cfg;
  cfg.reservation_depth = 1 + static_cast<std::int32_t>(seed % 8);

  trace::Trace with_backfill = {
      trace::JobRecord{}, trace::JobRecord{}, trace::JobRecord{}};
  auto fill = [](trace::JobRecord& j, std::int64_t id, SimTime submit, std::int32_t nodes,
                 SimTime runtime) {
    j.job_id = id;
    j.submit_time = submit;
    j.num_nodes = nodes;
    j.actual_runtime = runtime;
    j.time_limit = runtime;
  };
  fill(with_backfill[0], 1, 0, 2, 100);
  fill(with_backfill[1], 2, 1, 3, 50);
  fill(with_backfill[2], 3, 2, 1, 30);
  trace::Trace without_backfill = {with_backfill[0], with_backfill[1]};

  const auto run = [&](const trace::Trace& w) {
    sim::Simulator s(4, cfg);
    s.load_workload(w);
    s.schedule_cluster_event({5, sim::ClusterEventType::kDrain, 1});
    s.run_to_completion();
    return s.start_time(1);  // the blocker
  };
  EXPECT_LE(run(with_backfill), run(without_backfill));
}

TEST_P(EventProperty, PerPartitionInvariantsHoldUnderEventStorms) {
  // Random multi-partition cluster + random workload + random event storm
  // (outages, drains, restores, preemption bursts, correlated failures,
  // targeted and cluster-wide). Sampled at a fine cadence, every partition
  // must satisfy 0 <= busy <= total and carry non-negative drain debt, and
  // the cluster-wide counters must equal the partition sums.
  Rng rng(0x9a27 + GetParam());
  const auto nparts = static_cast<std::int32_t>(rng.uniform_int(2, 4));
  std::vector<sim::Partition> parts;
  std::vector<std::string> names;
  for (std::int32_t p = 0; p < nparts; ++p) {
    names.push_back("pool" + std::to_string(p));
    parts.push_back({names.back(), static_cast<std::int32_t>(rng.uniform_int(4, 24))});
  }
  sim::Simulator simulator(sim::ClusterModel(parts), {});

  Trace workload;
  const auto n = static_cast<std::size_t>(rng.uniform_int(40, 120));
  for (std::size_t i = 0; i < n; ++i) {
    JobRecord j;
    j.job_id = static_cast<std::int64_t>(i + 1);
    j.submit_time = rng.uniform_int(0, 5 * kDay);
    const bool pinned = rng.bernoulli(0.6);
    const auto p = static_cast<std::size_t>(rng.uniform_int(0, nparts - 1));
    if (pinned) j.partition = names[p];
    const std::int32_t ceiling = pinned ? parts[p].nodes : parts[0].nodes;
    j.num_nodes = static_cast<std::int32_t>(rng.uniform_int(1, std::min(ceiling, 8)));
    j.actual_runtime = rng.uniform_int(kMinute, 12 * kHour);
    j.time_limit = j.actual_runtime + rng.uniform_int(0, 4 * kHour);
    workload.push_back(std::move(j));
  }
  simulator.load_workload(workload);

  SimTime t = kHour;
  for (int i = 0; i < 10; ++i) {
    sim::ClusterEvent ev;
    ev.time = t;
    ev.nodes = static_cast<std::int32_t>(rng.uniform_int(1, 12));
    if (rng.bernoulli(0.6)) {
      ev.partition = names[static_cast<std::size_t>(rng.uniform_int(0, nparts - 1))];
    }
    switch (rng.uniform_int(0, 4)) {
      case 0: ev.type = sim::ClusterEventType::kNodeDown; break;
      case 1: ev.type = sim::ClusterEventType::kDrain; break;
      case 2: ev.type = sim::ClusterEventType::kNodeRestore; break;
      case 3:
        ev.type = sim::ClusterEventType::kPreempt;
        ev.requeue_delay = rng.uniform_int(0, 2 * kHour);
        break;
      default:
        ev.type = sim::ClusterEventType::kCorrelatedDown;
        ev.rack_size = static_cast<std::int32_t>(rng.uniform_int(1, 4));
        ev.seed = rng.next_u64();
        break;
    }
    simulator.schedule_cluster_event(ev);
    t += rng.uniform_int(kHour, kDay);
  }

  for (SimTime clock = 0; clock <= 6 * kDay; clock += 20 * kMinute) {
    simulator.run_until(clock);
    std::int32_t total_sum = 0, free_sum = 0, drain_sum = 0;
    for (std::int32_t p = 0; p < nparts; ++p) {
      const std::int32_t total = simulator.total_nodes(p);
      const std::int32_t free = simulator.free_nodes(p);
      ASSERT_GE(total, 0) << "partition " << p << " at t=" << clock;
      ASSERT_GE(free, 0) << "partition " << p << " at t=" << clock;
      ASSERT_LE(free, total) << "partition " << p << " at t=" << clock;
      ASSERT_GE(simulator.drain_pending(p), 0) << "partition " << p;
      total_sum += total;
      free_sum += free;
      drain_sum += simulator.drain_pending(p);
    }
    ASSERT_EQ(simulator.total_nodes(), total_sum);
    ASSERT_EQ(simulator.free_nodes(), free_sum);
    ASSERT_EQ(simulator.drain_pending(), drain_sum);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventProperty, ::testing::Values(1, 2, 3, 4, 5, 6));

// ----------------------------------------------- Fast-vs-reference sweeps

class FidelityProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FidelityProperty, FastTracksReferenceOnRandomWindows) {
  trace::GeneratorOptions opt;
  opt.seed = 100 + GetParam();
  opt.job_count_scale = 0.15;
  trace::SyntheticTraceGenerator gen(trace::a100_preset(), opt);
  const auto full = gen.generate();
  Rng rng(GetParam());
  const auto week = trace::random_window(full, util::kWeek, rng);
  if (week.size() < 20) GTEST_SKIP() << "window too sparse";
  sim::SchedulerConfig cfg;
  cfg.reservation_depth = 16;
  const auto fast = sim::replay_trace(week, 76, cfg);
  const auto ref = sim::reference_replay(week, 76);
  const auto rep = sim::compare_schedules(fast, ref);
  EXPECT_LT(rep.makespan_rel_diff, 0.05);
  EXPECT_LT(rep.jct_geomean_ratio, 1.25);
}

INSTANTIATE_TEST_SUITE_P(Windows, FidelityProperty, ::testing::Values(1, 2, 3, 4, 5, 6));

// ----------------------------------------------------- Model invariants

struct ModelCase {
  nn::FoundationType type;
  std::size_t batch;
};

class ModelProperty : public ::testing::TestWithParam<ModelCase> {};

nn::FoundationConfig prop_net() {
  nn::FoundationConfig cfg;
  cfg.history_len = 5;
  cfg.state_dim = rl::kFrameDim;
  cfg.d_model = 8;
  cfg.num_heads = 2;
  cfg.num_layers = 1;
  cfg.ffn_hidden = 16;
  cfg.moe_experts = 2;
  return cfg;
}

TEST_P(ModelProperty, PolicyIsAlwaysAValidDistribution) {
  nn::DualHeadModel m(GetParam().type, prop_net(), 9);
  Rng rng(3);
  nn::Tensor x(GetParam().batch, prop_net().input_dim());
  for (float& v : x.flat()) v = static_cast<float>(rng.normal(0, 3));
  const auto probs = m.forward_policy(x, false);
  for (std::size_t b = 0; b < probs.rows(); ++b) {
    float sum = 0;
    for (std::size_t c = 0; c < 2; ++c) {
      EXPECT_GE(probs.at(b, c), 0.0f);
      EXPECT_LE(probs.at(b, c), 1.0f);
      sum += probs.at(b, c);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST_P(ModelProperty, BatchInvariance) {
  // Row b of a batched forward must equal the single-row forward.
  nn::DualHeadModel m(GetParam().type, prop_net(), 10);
  Rng rng(4);
  nn::Tensor x(GetParam().batch, prop_net().input_dim());
  for (float& v : x.flat()) v = static_cast<float>(rng.normal());
  const auto batched = m.forward_q(x, false);
  for (std::size_t b = 0; b < GetParam().batch; ++b) {
    nn::Tensor row(1, x.cols());
    std::copy(x.row(b), x.row(b) + x.cols(), row.row(0));
    const auto single = m.forward_q(row, false);
    EXPECT_NEAR(single.at(0, 0), batched.at(b, 0), 1e-4f) << "row " << b;
  }
}

TEST_P(ModelProperty, TrainingStepReducesLossOnFixedBatch) {
  nn::DualHeadModel m(GetParam().type, prop_net(), 11);
  Rng rng(5);
  nn::Tensor x(8, prop_net().input_dim());
  nn::Tensor target(8, 1);
  for (float& v : x.flat()) v = static_cast<float>(rng.normal());
  for (float& v : target.flat()) v = static_cast<float>(rng.normal());
  nn::Adam opt(m.q_parameters(), 3e-3f);
  float first = 0, last = 0;
  for (int step = 0; step < 60; ++step) {
    opt.zero_grad();
    auto [loss, grad] = nn::mse_loss(m.forward_q(x, true), target);
    m.backward_q(grad);
    opt.step();
    if (step == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, 0.5f * first);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ModelProperty,
    ::testing::Values(ModelCase{nn::FoundationType::kTransformer, 1},
                      ModelCase{nn::FoundationType::kTransformer, 4},
                      ModelCase{nn::FoundationType::kMoE, 1},
                      ModelCase{nn::FoundationType::kMoE, 4}));

// ------------------------------------------------------- Reward identity

class RewardProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RewardProperty, ExactlyOneOutcomeSideAndRewardSign) {
  Rng rng(GetParam());
  rl::RewardConfig rc;
  rc.e_interrupt = rng.uniform(0.1, 3.0);
  rc.e_overlap = rng.uniform(0.1, 3.0);
  for (int i = 0; i < 200; ++i) {
    const SimTime pred_end = static_cast<SimTime>(rng.uniform(0, 1e6));
    const SimTime succ_start = static_cast<SimTime>(rng.uniform(0, 1e6));
    const SimTime runtime = static_cast<SimTime>(rng.uniform(1, 48.0 * kHour));
    const auto o = rl::make_outcome(pred_end, succ_start, runtime);
    EXPECT_TRUE(o.interruption == 0 || o.overlap == 0);
    EXPECT_GE(o.interruption, 0);
    EXPECT_GE(o.overlap, 0);
    EXPECT_LE(o.overlap, runtime);
    EXPECT_LE(rl::shaped_reward(o, rc), 0.0);
    if (o.interruption == 0 && o.overlap == 0) {
      EXPECT_DOUBLE_EQ(rl::shaped_reward(o, rc), 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewardProperty, ::testing::Values(1, 2, 3, 4));

// -------------------------------------------------------- Env invariants

class EnvProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EnvProperty, EpisodeAlwaysTerminatesWithConsistentOutcome) {
  trace::GeneratorOptions opt;
  opt.seed = 200 + GetParam();
  opt.job_count_scale = 0.15;
  trace::SyntheticTraceGenerator gen(trace::a100_preset(), opt);
  const auto full = gen.generate();
  rl::EpisodeConfig ec;
  ec.job_runtime = 8 * kHour;
  ec.job_limit = 8 * kHour;
  ec.decision_interval = 30 * kMinute;
  ec.warmup = 6 * kHour;
  ec.history_len = 4;

  Rng rng(GetParam());
  for (int trial = 0; trial < 4; ++trial) {
    const SimTime t0 = static_cast<SimTime>(
        rng.uniform(static_cast<double>(kDay), 4.0 * util::kMonth));
    const auto window = rl::slice_for_episode(full, t0, ec);
    rl::ProvisionEnv env(window, 76, ec, t0);
    // Random policy with small submit probability.
    std::size_t steps = 0;
    while (!env.done() && steps < 5000) {
      ++steps;
      if (!env.step(rng.bernoulli(0.02) ? 1 : 0)) break;
    }
    if (!env.done()) env.finish();
    ASSERT_TRUE(env.done());
    const auto& o = env.outcome();
    EXPECT_TRUE(o.interruption == 0 || o.overlap == 0);
    EXPECT_GE(env.successor_wait(), 0);
    EXPECT_LE(env.reward(), 0.0);
    // Submission never precedes the anchor.
    EXPECT_GE(env.submit_offset(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnvProperty, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace mirage

// Scenario engine + sweep harness: spec round-trips, malformed-spec error
// paths, timed cluster events in both simulators, and the parallel-equals-
// serial bitwise determinism contract.
#include <gtest/gtest.h>

#include <algorithm>

#include "scenario/scenario.hpp"
#include "scenario/sweep.hpp"
#include "sim/reference_simulator.hpp"
#include "sim/simulator.hpp"
#include "util/csv.hpp"

namespace mirage::scenario {
namespace {

using sim::ClusterEvent;
using sim::ClusterEventType;
using sim::JobStatus;
using sim::Simulator;
using trace::JobRecord;
using trace::Trace;
using util::kHour;
using util::SimTime;

JobRecord make_job(std::int64_t id, SimTime submit, std::int32_t nodes, SimTime runtime,
                   SimTime limit = 0) {
  JobRecord j;
  j.job_id = id;
  j.job_name = "j" + std::to_string(id);
  j.submit_time = submit;
  j.num_nodes = nodes;
  j.actual_runtime = runtime;
  j.time_limit = limit ? limit : runtime;
  return j;
}

ScenarioSpec small_spec() {
  ScenarioSpec spec;
  spec.name = "unit";
  spec.cluster = "a100";
  spec.months_begin = 0;
  spec.months_end = 1;
  spec.seed = 7;
  spec.job_count_scale = 0.05;
  return spec;
}

// --------------------------------------------------------- Simulator events

TEST(ClusterEvents, NodeDownKillsMostRecentlyStartedJobs) {
  Simulator sim(4);
  sim.load_workload({make_job(1, 0, 2, 1000, 1000), make_job(2, 10, 2, 1000, 1000)});
  sim.schedule_cluster_event({100, ClusterEventType::kNodeDown, 3});
  sim.run_until(100);
  // 3 nodes must leave: no free nodes, so the LIFO victim (job 2, started
  // at t=10) dies, freeing 2; the last node comes from job 1's pair? No —
  // only 1 more node is needed and job 1 holds 2, so job 1 dies too.
  EXPECT_EQ(sim.status(1), JobStatus::kKilled);
  EXPECT_EQ(sim.status(0), JobStatus::kKilled);
  EXPECT_EQ(sim.total_nodes(), 1);
  EXPECT_EQ(sim.free_nodes(), 1);
  EXPECT_EQ(sim.killed_jobs(), 2u);
  EXPECT_EQ(sim.end_time(1), 100);
}

TEST(ClusterEvents, DownPrefersFreeNodes) {
  Simulator sim(8);
  sim.load_workload({make_job(1, 0, 2, 1000, 1000)});
  sim.schedule_cluster_event({50, ClusterEventType::kNodeDown, 4});
  sim.run_until(60);
  // 6 nodes were free; nothing is killed.
  EXPECT_EQ(sim.status(0), JobStatus::kRunning);
  EXPECT_EQ(sim.total_nodes(), 4);
  EXPECT_EQ(sim.free_nodes(), 2);
  EXPECT_EQ(sim.killed_jobs(), 0u);
}

TEST(ClusterEvents, DrainWaitsForJobsInsteadOfKilling) {
  Simulator sim(4);
  sim.load_workload({make_job(1, 0, 3, 100, 100)});
  sim.schedule_cluster_event({10, ClusterEventType::kDrain, 4});
  sim.run_until(10);
  // One free node is withheld immediately; 3 remain as drain debt.
  EXPECT_EQ(sim.status(0), JobStatus::kRunning);
  EXPECT_EQ(sim.total_nodes(), 3);
  EXPECT_EQ(sim.free_nodes(), 0);
  EXPECT_EQ(sim.drain_pending(), 3);
  sim.run_until(100);
  // Job finished normally; its nodes are absorbed by the drain.
  EXPECT_EQ(sim.status(0), JobStatus::kCompleted);
  EXPECT_EQ(sim.total_nodes(), 0);
  EXPECT_EQ(sim.drain_pending(), 0);
  EXPECT_EQ(sim.killed_jobs(), 0u);
}

TEST(ClusterEvents, RestoreReopensCapacityAndSchedules) {
  Simulator sim(4);
  sim.schedule_cluster_event({0, ClusterEventType::kNodeDown, 4});
  sim.load_workload({make_job(1, 10, 2, 50, 50)});
  sim.schedule_cluster_event({200, ClusterEventType::kNodeRestore, 4});
  sim.run_to_completion();
  EXPECT_EQ(sim.start_time(0), 200);  // waited for the restore
  EXPECT_EQ(sim.status(0), JobStatus::kCompleted);
  EXPECT_EQ(sim.total_nodes(), 4);
  EXPECT_EQ(sim.free_nodes(), 4);
}

TEST(ClusterEvents, RestorePaysDrainDebtFirst) {
  Simulator sim(4);
  sim.load_workload({make_job(1, 0, 4, 1000, 1000)});
  sim.schedule_cluster_event({10, ClusterEventType::kDrain, 2});
  sim.schedule_cluster_event({20, ClusterEventType::kNodeRestore, 1});
  sim.run_until(30);
  // Drain debt was 2 (no free nodes); the restored node is absorbed.
  EXPECT_EQ(sim.total_nodes(), 4);
  EXPECT_EQ(sim.drain_pending(), 1);
}

TEST(ClusterEvents, StaleFinishEventOfKilledJobIsIgnored) {
  Simulator sim(2);
  sim.load_workload({make_job(1, 0, 2, 100, 100), make_job(2, 5, 2, 50, 50)});
  sim.schedule_cluster_event({10, ClusterEventType::kNodeDown, 2});
  sim.schedule_cluster_event({150, ClusterEventType::kNodeRestore, 2});
  sim.run_to_completion();  // must not assert/crash on job 1's old finish event
  EXPECT_EQ(sim.status(0), JobStatus::kKilled);
  EXPECT_EQ(sim.status(1), JobStatus::kCompleted);
  EXPECT_EQ(sim.start_time(1), 150);
}

TEST(ClusterEvents, MoreEventsThanJobsIsSafe) {
  // Regression: cluster events index cluster_events_, not jobs_ — an
  // event-only simulation must not touch the (empty) job table.
  Simulator sim(4);
  sim.schedule_cluster_event({10, ClusterEventType::kNodeDown, 2});
  sim.schedule_cluster_event({20, ClusterEventType::kDrain, 1});
  sim.schedule_cluster_event({30, ClusterEventType::kNodeRestore, 3});
  sim.run_to_completion();
  EXPECT_EQ(sim.total_nodes(), 4);
  EXPECT_EQ(sim.free_nodes(), 4);
}

TEST(ClusterEvents, ReferenceSimulatorMatchesFastUnderEvents) {
  Trace w;
  for (int i = 0; i < 12; ++i) {
    w.push_back(make_job(i + 1, i * 40, 1 + i % 3, 200 + 30 * i, 400 + 30 * i));
  }
  const std::vector<ClusterEvent> events = {{300, ClusterEventType::kNodeDown, 3},
                                            {900, ClusterEventType::kNodeRestore, 3},
                                            {1500, ClusterEventType::kDrain, 2},
                                            {2500, ClusterEventType::kNodeRestore, 2}};
  sim::SchedulerConfig cfg;
  cfg.reservation_depth = static_cast<std::int32_t>(w.size());
  cfg.max_backfill_candidates = static_cast<std::int32_t>(w.size());

  Simulator fast(8, cfg);
  fast.load_workload(w);
  for (const auto& ev : events) fast.schedule_cluster_event(ev);
  fast.run_to_completion();
  const auto fast_sched = fast.export_schedule();

  std::size_t ref_killed = 0;
  const auto ref_sched = sim::reference_replay(w, 8, events, cfg, nullptr, &ref_killed);

  EXPECT_EQ(fast.killed_jobs(), ref_killed);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_EQ(fast_sched[i].start_time, ref_sched[i].start_time) << "job " << i;
    EXPECT_EQ(fast_sched[i].end_time, ref_sched[i].end_time) << "job " << i;
  }
}

// ------------------------------------------------------------- Spec parsing

TEST(ScenarioSpec, TextRoundTripIsExact) {
  ScenarioSpec spec = small_spec();
  spec.nodes_override = 60;
  spec.utilization_scale = 1.17;
  spec.scheduler.reservation_depth = 4;
  spec.scheduler.size_weight = -25.5;
  spec.events.push_back({ScenarioEventKind::kNodeDown, 3 * kHour, 8, 0, 0, 0, 600});
  spec.events.push_back({ScenarioEventKind::kNodeRestore, 9 * kHour, 8, 0, 0, 0, 600});
  spec.events.push_back({ScenarioEventKind::kBurst, 5 * kHour, 2, 40, 1800, 3600, 900});

  std::string error;
  const auto parsed = parse_scenario(spec.to_text(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->to_text(), spec.to_text());
  EXPECT_EQ(parsed->name, spec.name);
  EXPECT_EQ(parsed->nodes_override, 60);
  EXPECT_DOUBLE_EQ(parsed->utilization_scale, 1.17);
  EXPECT_DOUBLE_EQ(parsed->scheduler.size_weight, -25.5);
  ASSERT_EQ(parsed->events.size(), 3u);
  EXPECT_EQ(parsed->events[2].kind, ScenarioEventKind::kBurst);
  EXPECT_EQ(parsed->events[2].count, 40);
  EXPECT_EQ(parsed->events[2].window, 900);
}

TEST(ScenarioSpec, RoundTrippedSpecProducesBitwiseIdenticalResults) {
  ScenarioSpec spec = small_spec();
  spec.events.push_back({ScenarioEventKind::kNodeDown, 5 * util::kDay, 20, 0, 0, 0, 600});
  spec.events.push_back({ScenarioEventKind::kNodeRestore, 8 * util::kDay, 20, 0, 0, 0, 600});
  spec.events.push_back({ScenarioEventKind::kBurst, 10 * util::kDay, 2, 30, 3600, 7200, 600});

  std::string error;
  const auto parsed = parse_scenario(spec.to_text(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const auto a = run_scenario(spec);
  const auto b = run_scenario(*parsed);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.schedule_hash, b.schedule_hash);
}

TEST(ScenarioSpec, FileRoundTripProducesBitwiseIdenticalSweepResults) {
  ScenarioSpec spec = small_spec();
  spec.events.push_back({ScenarioEventKind::kNodeDown, 4 * util::kDay, 30, 0, 0, 0, 600});
  spec.events.push_back({ScenarioEventKind::kNodeRestore, 6 * util::kDay, 30, 0, 0, 0, 600});

  const std::string path = ::testing::TempDir() + "/mirage_scenario_spec.txt";
  ASSERT_TRUE(save_scenario_file(spec, path));
  std::string error;
  const auto loaded = load_scenario_file(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_TRUE(run_scenario(spec) == run_scenario(*loaded));
}

TEST(ScenarioSpec, MissingFileIsAnErrorNotACrash) {
  std::string error;
  EXPECT_FALSE(load_scenario_file("/nonexistent/mirage.spec", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(ScenarioSpec, MalformedSpecsErrorWithoutCrashing) {
  const char* bad[] = {
      "this is not a spec at all",
      "cluster=h100\nmonths_end=1",                       // unknown cluster
      "cluster=a100\nmonths_begin=2\nmonths_end=1",       // inverted range
      "cluster=a100\nmonths_end=1\nseed=notanumber",      // junk number
      "cluster=a100\nmonths_end=1\nutilization_scale=0",  // non-positive scale
      "cluster=a100\nmonths_end=1\nevent.0=explode,5,2",  // unknown event type
      "cluster=a100\nmonths_end=1\nevent.0=down,5",       // missing fields
      "cluster=a100\nmonths_end=1\nevent.0=burst,5,2,10", // burst missing fields
      "cluster=a100\nmonths_end=1\nevent.0=down,-5,2",    // negative time
      "cluster=a100\nmonths_end=1\nevent.0=burst,0,999,4,60,60",  // oversize burst
      "cluster=a100\nmonths_end=1\nwarp_factor=9",        // unknown key
      "cluster=a100\nmonths_end=1\nevent.0=restore,5,4294967294",  // int32 overflow
      "cluster=a100\nmonths_end=1\nreservation_depth=4294967296",  // int32 overflow
  };
  for (const char* text : bad) {
    std::string error;
    const auto parsed = parse_scenario(text, &error);
    EXPECT_FALSE(parsed.has_value()) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(ScenarioSpec, CommentsAndBlankLinesAreAccepted) {
  const std::string text =
      "# a comment\n"
      "\n"
      "cluster=rtx  # trailing comment\n"
      "months_end=2\n";
  std::string error;
  const auto parsed = parse_scenario(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->cluster, "rtx");
  EXPECT_EQ(parsed->months_end, 2);
}

// ------------------------------------------------------------ Workload build

TEST(ScenarioWorkload, BurstJobsAreInjectedDeterministically) {
  ScenarioSpec spec = small_spec();
  spec.events.push_back({ScenarioEventKind::kBurst, 2 * util::kDay, 2, 25, 1800, 3600, 600});
  const auto a = build_workload(spec);
  const auto b = build_workload(spec);
  ASSERT_EQ(a.size(), b.size());
  std::size_t bursts = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].submit_time, b[i].submit_time);
    EXPECT_EQ(a[i].job_id, b[i].job_id);
    if (a[i].job_name == "burst") {
      ++bursts;
      EXPECT_GE(a[i].submit_time, 2 * util::kDay);
      EXPECT_LT(a[i].submit_time, 2 * util::kDay + 600);
      EXPECT_EQ(a[i].num_nodes, 2);
    }
  }
  EXPECT_EQ(bursts, 25u);
}

TEST(ScenarioRun, EventScenarioKillsAndRecovers) {
  ScenarioSpec spec = small_spec();
  spec.job_count_scale = 0.1;
  // Take most of the cluster down mid-month, restore two days later.
  spec.events.push_back({ScenarioEventKind::kNodeDown, 10 * util::kDay, 70, 0, 0, 0, 600});
  spec.events.push_back({ScenarioEventKind::kNodeRestore, 12 * util::kDay, 70, 0, 0, 0, 600});
  const auto with_events = run_scenario(spec);
  ScenarioSpec baseline = spec;
  baseline.events.clear();
  const auto without = run_scenario(baseline);
  EXPECT_EQ(with_events.jobs, without.jobs);
  EXPECT_EQ(without.killed_jobs, 0u);
  EXPECT_EQ(without.unscheduled, 0u);
  // The outage scenario must register: either killed jobs or worse waits.
  EXPECT_TRUE(with_events.killed_jobs > 0 ||
              with_events.metrics.mean_wait_hours > without.metrics.mean_wait_hours);
  EXPECT_NE(with_events.schedule_hash, without.schedule_hash);
}

TEST(ScenarioRun, FastTracksReferenceOnEventScenario) {
  ScenarioSpec spec = small_spec();
  spec.job_count_scale = 0.08;
  spec.scheduler.reservation_depth = 10000;
  spec.scheduler.max_backfill_candidates = 10000;
  spec.events.push_back({ScenarioEventKind::kDrain, 6 * util::kDay, 30, 0, 0, 0, 600});
  spec.events.push_back({ScenarioEventKind::kNodeRestore, 9 * util::kDay, 30, 0, 0, 0, 600});
  spec.events.push_back({ScenarioEventKind::kBurst, 12 * util::kDay, 1, 30, 3600, 7200, 600});
  const auto fast = run_scenario(spec);
  const auto ref = run_scenario_reference(spec);
  // At unbounded reservation depth the fast simulator implements the same
  // conservative policy as the reference — bitwise identical schedules.
  EXPECT_EQ(fast.schedule_hash, ref.schedule_hash);
  EXPECT_EQ(fast.killed_jobs, ref.killed_jobs);
}

// ------------------------------------------------------------------- Sweeps

SweepMatrix small_matrix() {
  SweepMatrix m;
  m.base = small_spec();
  m.base.job_count_scale = 0.04;
  m.utilization_scales = {0.9, 1.1};
  m.reservation_depths = {1, 8};
  m.event_profiles.push_back({"none", {}});
  m.event_profiles.push_back(
      {"outage",
       {{ScenarioEventKind::kNodeDown, 8 * util::kDay, 40, 0, 0, 0, 600},
        {ScenarioEventKind::kNodeRestore, 10 * util::kDay, 40, 0, 0, 0, 600}}});
  return m;
}

TEST(Sweep, ExpansionIsDeterministicAndComplete) {
  const auto m = small_matrix();
  const auto a = m.expand();
  const auto b = m.expand();
  ASSERT_EQ(a.size(), m.cell_count());
  ASSERT_EQ(a.size(), 8u);  // 2 scales x 2 depths x 2 profiles
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].name, b[i].name);
  }
  // Distinct cells get distinct seeds.
  for (std::size_t i = 1; i < a.size(); ++i) EXPECT_NE(a[i].seed, a[0].seed);
}

TEST(Sweep, ParallelRunIsBitwiseIdenticalToSerial) {
  const auto cells = small_matrix().expand();
  const auto serial = SweepRunner::run_serial(cells);
  const auto parallel = SweepRunner(4).run(cells);
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    EXPECT_TRUE(serial.cells[i] == parallel.cells[i]) << "cell " << i;
  }
  EXPECT_EQ(serial.total_killed, parallel.total_killed);
  EXPECT_EQ(serial.mean_wait_hours, parallel.mean_wait_hours);
}

TEST(Sweep, ReportFormatsContainEveryCell) {
  const auto cells = small_matrix().expand();
  auto report = SweepRunner::run_serial(cells);
  const auto csv = report.to_csv();
  const auto table = report.format_table();
  for (const auto& cell : report.cells) {
    EXPECT_NE(csv.find(cell.name), std::string::npos);
    EXPECT_NE(table.find(cell.name), std::string::npos);
  }
}

TEST(Sweep, PipelineConfigInheritsScenarioKnobs) {
  ScenarioSpec spec = small_spec();
  spec.utilization_scale = 1.3;
  spec.seed = 99;
  const auto cfg = to_pipeline_config(spec, 2);
  EXPECT_EQ(cfg.preset.name, "A100");
  EXPECT_EQ(cfg.generator.seed, 99u);
  EXPECT_DOUBLE_EQ(cfg.generator.utilization_scale, 1.3);
  EXPECT_EQ(cfg.episode.job_nodes, 2);
}

TEST(Sweep, CsvQuotesHostileCellAndProfileNames) {
  // Satellite contract: names containing delimiters survive to_csv ->
  // util::csv parse (quoting/escaping, not stripping).
  SweepReport report;
  ScenarioResult cell;
  cell.name = "a100/u1.10,d8/\"flash, crowd\"\rnightly";
  cell.total_nodes = 76;
  report.cells.push_back(cell);
  finalize_report(report);

  const auto table = util::CsvTable::parse(report.to_csv(), /*has_header=*/true);
  ASSERT_EQ(table.row_count(), 1u);
  const int col = table.column("scenario");
  ASSERT_GE(col, 0);
  EXPECT_EQ(table.row(0)[static_cast<std::size_t>(col)], cell.name);
}

// -------------------------------------------------------- Recurring events

TEST(RecurringEvents, RoundTripAndExpansion) {
  ScenarioSpec spec = small_spec();
  // Weekly 4-occurrence maintenance calendar + recurring burst.
  spec.events.push_back(
      {ScenarioEventKind::kDrain, 2 * util::kDay, 10, 0, 0, 0, 600, util::kWeek, 4});
  spec.events.push_back({ScenarioEventKind::kBurst, 3 * util::kDay, 2, 10, 3600, 7200, 600,
                         util::kWeek, 3});

  EXPECT_NE(event_to_csv(spec.events[0]).find("repeat_every=604800"), std::string::npos);
  EXPECT_NE(event_to_csv(spec.events[0]).find("repeat_count=4"), std::string::npos);

  std::string error;
  const auto parsed = parse_scenario(spec.to_text(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->to_text(), spec.to_text());
  ASSERT_EQ(parsed->events.size(), 2u);
  EXPECT_EQ(parsed->events[0].repeat_count, 4);
  EXPECT_EQ(parsed->events[0].repeat_every, util::kWeek);

  const auto expanded = expand_events(parsed->events);
  ASSERT_EQ(expanded.size(), 7u);  // 4 drains + 3 bursts
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(expanded[i].kind, ScenarioEventKind::kDrain);
    EXPECT_EQ(expanded[i].time, 2 * util::kDay + i * util::kWeek);
    EXPECT_EQ(expanded[i].repeat_count, 1);  // occurrences are one-shot
  }
  EXPECT_EQ(capacity_events(*parsed).size(), 4u);

  // Each burst occurrence injects `count` jobs into the workload.
  ScenarioSpec calm = small_spec();
  const auto base_jobs = build_workload(calm).size();
  const auto jobs = build_workload(*parsed).size();
  EXPECT_EQ(jobs, base_jobs + 3u * 10u);
}

TEST(RecurringEvents, OneShotBehaviorIsUnchanged) {
  // A default-constructed recurrence (count=1) must leave workloads and
  // schedules bitwise identical to the pre-recurrence engine: same single
  // occurrence, same per-burst RNG splits.
  ScenarioSpec spec = small_spec();
  spec.events.push_back({ScenarioEventKind::kBurst, 5 * util::kDay, 2, 30, 3600, 7200, 600});
  spec.events.push_back({ScenarioEventKind::kNodeDown, 6 * util::kDay, 10, 0, 0, 0, 600});
  const auto expanded = expand_events(spec.events);
  ASSERT_EQ(expanded.size(), 2u);
  EXPECT_EQ(expanded[0].time, spec.events[0].time);
  EXPECT_EQ(run_scenario(spec), run_scenario(spec));
}

TEST(RecurringEvents, ExpansionBeyondHorizonIsRejectedWithDiagnostic) {
  // months_end=1 -> horizon is 30 days; 9 weekly occurrences run past it.
  const std::string text =
      "cluster=a100\nmonths_end=1\n"
      "event.0=down,86400,4,repeat_every=604800,repeat_count=9\n";
  std::string error;
  EXPECT_FALSE(parse_scenario(text, &error).has_value());
  EXPECT_NE(error.find("horizon"), std::string::npos) << error;

  // The same calendar fits a 3-month scenario.
  const std::string ok_text =
      "cluster=a100\nmonths_end=3\n"
      "event.0=down,86400,4,repeat_every=604800,repeat_count=9\n";
  EXPECT_TRUE(parse_scenario(ok_text, &error).has_value()) << error;
}

// ------------------------------------------ Partitions + new event kinds

ScenarioSpec partitioned_spec() {
  ScenarioSpec spec = small_spec();
  spec.name = "parts";
  spec.partitions = {{"v100", 12}, {"rtx", 10}, {"a100", 8}};
  return spec;
}

TEST(PartitionedScenario, TextRoundTripPreservesPartitionsAndEventKeywords) {
  ScenarioSpec spec = partitioned_spec();
  ScenarioEvent preempt{ScenarioEventKind::kPreempt, 3 * kHour, 6};
  preempt.partition = "v100";
  preempt.requeue_delay = 1800;
  spec.events.push_back(preempt);
  ScenarioEvent correlated{ScenarioEventKind::kCorrelatedDown, 9 * kHour, 8};
  correlated.rack_size = 4;
  correlated.seed = 1234;
  spec.events.push_back(correlated);
  ScenarioEvent burst{ScenarioEventKind::kBurst, 5 * kHour, 2, 10, 1800, 3600, 900};
  burst.partition = "rtx";
  spec.events.push_back(burst);

  std::string error;
  const auto parsed = parse_scenario(spec.to_text(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->to_text(), spec.to_text());
  ASSERT_EQ(parsed->partitions.size(), 3u);
  EXPECT_EQ(parsed->partitions[0].name, "v100");
  EXPECT_EQ(parsed->partitions[1].node_count, 10);
  ASSERT_EQ(parsed->events.size(), 3u);
  EXPECT_EQ(parsed->events[0].kind, ScenarioEventKind::kPreempt);
  EXPECT_EQ(parsed->events[0].partition, "v100");
  EXPECT_EQ(parsed->events[0].requeue_delay, 1800);
  EXPECT_EQ(parsed->events[1].kind, ScenarioEventKind::kCorrelatedDown);
  EXPECT_EQ(parsed->events[1].rack_size, 4);
  EXPECT_EQ(parsed->events[1].seed, 1234u);
  EXPECT_EQ(parsed->events[2].partition, "rtx");

  // Partitions override the preset: node_count becomes the sum.
  const auto preset = parsed->resolved_preset();
  EXPECT_EQ(preset.node_count, 30);
  ASSERT_EQ(preset.partitions.size(), 3u);
}

TEST(PartitionedScenario, InvalidPartitionSpecsAreRejected) {
  const char* bad[] = {
      // event targets a partition the spec does not define
      "cluster=a100\nmonths_end=1\npartition.0=a,10\nevent.0=down,5,2,partition=b",
      // burst bigger than its target partition
      "cluster=a100\nmonths_end=1\npartition.0=a,10\npartition.1=b,4\n"
      "event.0=burst,5,6,4,60,60,partition=b",
      // duplicate partition names
      "cluster=a100\nmonths_end=1\npartition.0=a,10\npartition.1=a,4",
      // malformed partition lines
      "cluster=a100\nmonths_end=1\npartition.0=a",
      "cluster=a100\nmonths_end=1\npartition.0=a,0",
      "cluster=a100\nmonths_end=1\npartition.0=a,10,extra",
      // bad event keywords for the new kinds
      "cluster=a100\nmonths_end=1\nevent.0=preempt,5,2,requeue_delay=-1",
      "cluster=a100\nmonths_end=1\nevent.0=correlated_down,5,2,rack_size=0",
      "cluster=a100\nmonths_end=1\nevent.0=down,5,2,partition=",
  };
  for (const char* text : bad) {
    std::string error;
    EXPECT_FALSE(parse_scenario(text, &error).has_value()) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
  // The hetero preset is partitioned out of the box; events may target its
  // partitions without a partition.N override.
  std::string error;
  const auto ok = parse_scenario(
      "cluster=hetero\nmonths_end=1\nevent.0=preempt,5,4,partition=rtx,requeue_delay=60\n",
      &error);
  EXPECT_TRUE(ok.has_value()) << error;
}

TEST(PartitionedScenario, FastTracksReferenceBitwiseAtFullDepth) {
  // Acceptance slice: a partitioned cell with preemption and correlated
  // failures runs bitwise fast==reference at full reservation depth.
  ScenarioSpec spec = partitioned_spec();
  spec.job_count_scale = 0.3;
  spec.utilization_scale = 2.0;  // saturate so the events find victims
  ScenarioEvent preempt{ScenarioEventKind::kPreempt, 5 * util::kDay, 8};
  preempt.partition = "v100";
  preempt.requeue_delay = 3600;
  spec.events.push_back(preempt);
  ScenarioEvent correlated{ScenarioEventKind::kCorrelatedDown, 9 * util::kDay, 8};
  correlated.rack_size = 4;
  spec.events.push_back(correlated);
  ScenarioEvent restore{ScenarioEventKind::kNodeRestore, 12 * util::kDay, 8};
  restore.partition = "v100";
  spec.events.push_back(restore);
  spec.scheduler.reservation_depth = 100000;
  spec.scheduler.max_backfill_candidates = 100000;

  const auto fast = run_scenario(spec);
  const auto ref = run_scenario_reference(spec);
  EXPECT_EQ(fast.schedule_hash, ref.schedule_hash);
  EXPECT_EQ(fast.killed_jobs, ref.killed_jobs);
  EXPECT_EQ(fast.preempted_jobs, ref.preempted_jobs);
  EXPECT_GT(fast.preempted_jobs + fast.killed_jobs, 0u);
}

TEST(PartitionedScenario, PerPartitionVictimCountsMatchReferenceAndSumToTotals) {
  // The obs layer surfaces per-partition kill/preempt splits via
  // sim::EventKernel; they must agree between fast and reference paths and
  // sum to the scenario totals.
  ScenarioSpec spec = partitioned_spec();
  spec.job_count_scale = 0.3;
  spec.utilization_scale = 2.0;
  ScenarioEvent preempt{ScenarioEventKind::kPreempt, 5 * util::kDay, 8};
  preempt.partition = "v100";
  preempt.requeue_delay = 3600;
  spec.events.push_back(preempt);
  ScenarioEvent correlated{ScenarioEventKind::kCorrelatedDown, 9 * util::kDay, 8};
  correlated.rack_size = 4;
  spec.events.push_back(correlated);

  const auto fast = run_scenario(spec);
  const auto ref = run_scenario_reference(spec);
  ASSERT_EQ(fast.partition_counts.size(), 3u);
  EXPECT_EQ(fast.partition_counts[0].partition, "v100");
  EXPECT_EQ(fast.partition_counts[1].partition, "rtx");
  EXPECT_EQ(fast.partition_counts[2].partition, "a100");
  ASSERT_EQ(ref.partition_counts.size(), fast.partition_counts.size());
  std::size_t killed = 0;
  std::size_t preempted = 0;
  for (std::size_t p = 0; p < fast.partition_counts.size(); ++p) {
    EXPECT_TRUE(fast.partition_counts[p] == ref.partition_counts[p]) << "partition " << p;
    killed += fast.partition_counts[p].killed;
    preempted += fast.partition_counts[p].preempted;
  }
  EXPECT_EQ(killed, fast.killed_jobs);
  EXPECT_EQ(preempted, fast.preempted_jobs);
  EXPECT_GT(killed + preempted, 0u);
  // The preempt event targeted v100 only.
  EXPECT_EQ(fast.partition_counts[0].preempted, fast.preempted_jobs);

  // The text encoding (CSV / lab manifest currency) lists every partition.
  const std::string text = fast.partition_counts_text();
  EXPECT_NE(text.find("v100:"), std::string::npos) << text;
  EXPECT_EQ(std::count(text.begin(), text.end(), ';'), 2) << text;
}

TEST(PartitionedScenario, SweepCsvCarriesPartitionCounts) {
  ScenarioSpec spec = partitioned_spec();
  spec.job_count_scale = 0.3;
  spec.utilization_scale = 2.0;
  ScenarioEvent preempt{ScenarioEventKind::kPreempt, 5 * util::kDay, 8};
  preempt.partition = "rtx";
  preempt.requeue_delay = 3600;
  spec.events.push_back(preempt);

  const auto report = SweepRunner::run_serial({spec});
  const std::string csv = report.to_csv();
  EXPECT_NE(csv.find("partition_counts"), std::string::npos) << csv;
  EXPECT_NE(csv.find(report.cells[0].partition_counts_text()), std::string::npos) << csv;
}

TEST(PartitionedScenario, MultiPartitionSweepParallelEqualsSerialBitwise) {
  // Acceptance: multi-partition sweep with preemption + correlated-down
  // events, parallel == serial bitwise through SweepRunner.
  SweepMatrix matrix;
  matrix.base = small_spec();
  matrix.utilization_scales = {0.9, 1.1};
  ScenarioEvent preempt{ScenarioEventKind::kPreempt, 4 * util::kDay, 6};
  preempt.requeue_delay = 1800;
  ScenarioEvent correlated{ScenarioEventKind::kCorrelatedDown, 8 * util::kDay, 8};
  correlated.rack_size = 4;
  matrix.event_profiles = {{"none", {}}, {"failures", {preempt, correlated}}};
  matrix.partition_layouts = {
      {"single", {}},
      {"3pool", {{"v100", 10}, {"rtx", 10}, {"a100", 10}}},
  };

  const auto cells = matrix.expand();
  ASSERT_EQ(cells.size(), 8u);  // 2 scales x 2 profiles x 2 layouts
  EXPECT_NE(cells[0].name.find("/single"), std::string::npos);
  EXPECT_NE(cells[1].name.find("/3pool"), std::string::npos);

  const auto serial = SweepRunner::run_serial(cells);
  const auto parallel = SweepRunner(4).run(cells);
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    EXPECT_TRUE(serial.cells[i] == parallel.cells[i]) << "cell " << i;
  }
  EXPECT_EQ(serial.total_preempted, parallel.total_preempted);
  // The failure profile actually preempts/kills something somewhere.
  EXPECT_GT(serial.total_preempted + serial.total_killed, 0u);
}

TEST(PartitionedScenario, PartitionAxisKeepsSingleLayoutNamesStable) {
  // Without a partition axis, cell names and seed assignment keep their
  // pre-partition shape (artifact ids must not churn).
  SweepMatrix matrix;
  matrix.base = small_spec();
  matrix.utilization_scales = {1.0};
  const auto cells = matrix.expand();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].name.find("/single"), std::string::npos);
  EXPECT_EQ(cells[0].name, "a100/u1.00/d8/base");
}

TEST(RecurringEvents, MalformedRecurrenceKeysAreRejected) {
  const char* bad[] = {
      "cluster=a100\nmonths_end=1\nevent.0=down,5,2,repeat_count=3",  // no repeat_every
      "cluster=a100\nmonths_end=1\nevent.0=down,5,2,repeat_every=60", // no repeat_count
      "cluster=a100\nmonths_end=1\nevent.0=down,5,2,repeat_every=0,repeat_count=3",
      "cluster=a100\nmonths_end=1\nevent.0=down,5,2,repeat_every=60,repeat_count=0",
      "cluster=a100\nmonths_end=1\nevent.0=down,5,2,cron=weekly",     // unknown keyword
      "cluster=a100\nmonths_end=1\nevent.0=down,5,repeat_every=60,2", // positional after kw
  };
  for (const char* text : bad) {
    std::string error;
    EXPECT_FALSE(parse_scenario(text, &error).has_value()) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

}  // namespace
}  // namespace mirage::scenario

// Tests for the RL layer: state encoding (§4.1-4.3), reward shaping
// (§4.5), the provisioning environment, replay memory (§4.8), the DQN and
// PG agents, and the offline collector (§4.9.1).
#include <gtest/gtest.h>

#include "rl/dqn.hpp"
#include "rl/env.hpp"
#include "rl/offline_collector.hpp"
#include "rl/policy_gradient.hpp"
#include "rl/trainer.hpp"
#include "trace/generator.hpp"

namespace mirage::rl {
namespace {

using sim::StateSample;
using trace::JobRecord;
using trace::Trace;
using util::kDay;
using util::kHour;
using util::kMinute;
using util::Rng;
using util::SimTime;

nn::FoundationConfig tiny_net() {
  nn::FoundationConfig cfg;
  cfg.history_len = 4;
  cfg.state_dim = kFrameDim;
  cfg.d_model = 8;
  cfg.num_heads = 2;
  cfg.num_layers = 1;
  cfg.ffn_hidden = 16;
  cfg.moe_experts = 2;
  return cfg;
}

StateSample sample_with(std::int32_t total, std::int32_t free,
                        std::vector<double> queued_sizes = {},
                        std::vector<double> running_sizes = {}) {
  StateSample s;
  s.now = 1000;
  s.total_nodes = total;
  s.free_nodes = free;
  s.queued_sizes = queued_sizes;
  s.queued_ages.assign(queued_sizes.size(), 600.0);
  s.queued_limits.assign(queued_sizes.size(), 3600.0);
  s.running_sizes = running_sizes;
  s.running_elapsed.assign(running_sizes.size(), 120.0);
  s.running_limits.assign(running_sizes.size(), 7200.0);
  return s;
}

// ----------------------------------------------------------- StateEncoder

TEST(StateEncoderTest, FrameHas40Vars) {
  const auto f = encode_frame(sample_with(88, 40, {2, 4}, {8}), JobPairContext{});
  EXPECT_EQ(f.size(), kStateVars);
  for (float v : f) EXPECT_TRUE(std::isfinite(v));
}

TEST(StateEncoderTest, MultiPartitionFrameAppendsFreeFractions) {
  // A single-partition sample stays exactly 40 vars (bitwise-stable model
  // inputs); partitioned samples append one free fraction per partition.
  auto single = sample_with(88, 40);
  single.partition_total = {88};
  single.partition_free = {40};
  EXPECT_EQ(encode_frame(single, JobPairContext{}).size(), kStateVars);

  auto multi = sample_with(24, 9);
  multi.partition_total = {12, 8, 4};
  multi.partition_free = {6, 2, 1};
  const auto f = encode_frame(multi, JobPairContext{});
  ASSERT_EQ(f.size(), kStateVars + 3);
  EXPECT_FLOAT_EQ(f[kStateVars + 0], 0.5f);
  EXPECT_FLOAT_EQ(f[kStateVars + 1], 0.25f);
  EXPECT_FLOAT_EQ(f[kStateVars + 2], 0.25f);

  // A partition knocked fully offline encodes as 0 free, not NaN.
  multi.partition_total[2] = 0;
  multi.partition_free[2] = 0;
  EXPECT_FLOAT_EQ(encode_frame(multi, JobPairContext{})[kStateVars + 2], 0.0f);
}

TEST(StateEncoderTest, MismatchedFrameWidthThrowsInsteadOfCorrupting) {
  // A session encoder sized for one pool must reject multi-partition
  // samples loudly (flatten would otherwise write out of bounds).
  StateEncoder enc(/*history_len=*/2, /*partition_count=*/1);
  auto s = sample_with(16, 8);
  s.partition_total = {8, 8};
  s.partition_free = {4, 4};
  EXPECT_THROW(enc.push(s, JobPairContext{}), std::invalid_argument);
}

TEST(StateEncoderTest, PartitionAwareFlattenUsesWiderStride) {
  StateEncoder enc(/*history_len=*/3, /*partition_count=*/2);
  EXPECT_EQ(enc.frame_dim(), frame_dim(2));
  auto s = sample_with(16, 8);
  s.partition_total = {8, 8};
  s.partition_free = {8, 0};
  enc.push(s, JobPairContext{});
  const auto flat = enc.flatten(1.0f);
  const std::size_t stride = frame_dim(2);
  ASSERT_EQ(flat.size(), 3 * stride);
  // Newest frame sits in the last slot; its partition features precede the
  // action channel, and the action channel fills every frame.
  EXPECT_FLOAT_EQ(flat[2 * stride + kStateVars + 0], 1.0f);  // pool 0 fully free
  EXPECT_FLOAT_EQ(flat[2 * stride + kStateVars + 1], 0.0f);  // pool 1 fully busy
  for (std::size_t frame = 0; frame < 3; ++frame) {
    EXPECT_FLOAT_EQ(flat[frame * stride + stride - 1], 1.0f);
  }
}

TEST(StateEncoderTest, EmptyClusterFrameIsMostlyZero) {
  const auto f = encode_frame(sample_with(88, 88), JobPairContext{});
  // Queue count, summaries of empty vectors: zeros.
  EXPECT_FLOAT_EQ(f[0], 0.0f);
  EXPECT_FLOAT_EQ(f[1], 0.0f);
  EXPECT_FLOAT_EQ(f[16], 0.0f);  // running count
}

TEST(StateEncoderTest, NormalizationScales) {
  JobPairContext ctx;
  ctx.pred_nodes = 44;           // half the cluster
  ctx.pred_limit = 48 * kHour;   // exactly the scale
  const auto f = encode_frame(sample_with(88, 88), ctx);
  EXPECT_NEAR(f[34], 0.5f, 1e-6f);  // var35: pred size / total
  EXPECT_NEAR(f[35], 1.0f, 1e-6f);  // var36: limit / 48 h
}

TEST(StateEncoderTest, QueueSummariesOrdered) {
  const auto f = encode_frame(sample_with(88, 0, {1, 8, 2, 32, 4}), JobPairContext{});
  // vars 2-6 are min..max of queued sizes (normalized): non-decreasing.
  for (int i = 1; i < 5; ++i) EXPECT_LE(f[i], f[i + 1]);
  EXPECT_NEAR(f[1], 1.0f / 88.0f, 1e-6f);
  EXPECT_NEAR(f[5], 32.0f / 88.0f, 1e-6f);
}

TEST(StateEncoderTest, FlattenPadsMissingHistory) {
  StateEncoder enc(4);
  enc.push(sample_with(88, 10), JobPairContext{});
  const auto flat = enc.flatten(1.0f);
  EXPECT_EQ(flat.size(), 4 * kFrameDim);
  // First three frame slots are zero padding (except the action channel).
  for (std::size_t s = 0; s < 3; ++s) {
    for (std::size_t c = 0; c < kStateVars; ++c) EXPECT_FLOAT_EQ(flat[s * kFrameDim + c], 0.0f);
    EXPECT_FLOAT_EQ(flat[s * kFrameDim + kStateVars], 1.0f);
  }
}

TEST(StateEncoderTest, RingKeepsNewestK) {
  StateEncoder enc(2);
  for (int i = 0; i < 5; ++i) {
    auto s = sample_with(88, i);  // free_nodes varies; shows up via busy total
    enc.push(s, JobPairContext{});
  }
  EXPECT_EQ(enc.frames_seen(), 5u);
  const auto flat = enc.flatten(0.0f);
  EXPECT_EQ(flat.size(), 2 * kFrameDim);
}

TEST(StateEncoderTest, ActionChannelWrittenEverywhere) {
  StateEncoder enc(3);
  for (int i = 0; i < 3; ++i) enc.push(sample_with(88, 10), JobPairContext{});
  auto flat = enc.flatten(-1.0f);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_FLOAT_EQ(flat[s * kFrameDim + kStateVars], -1.0f);
  }
  set_action_channel(flat, 3, 1.0f);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_FLOAT_EQ(flat[s * kFrameDim + kStateVars], 1.0f);
  }
}

TEST(StateEncoderTest, SummaryFeaturesSizeAndFiniteness) {
  const auto f = summary_features(sample_with(88, 3, {2, 4}, {8, 16}), JobPairContext{});
  EXPECT_EQ(f.size(), summary_feature_count());
  for (float v : f) EXPECT_TRUE(std::isfinite(v));
}

// ----------------------------------------------------------------- Reward

TEST(Reward, OutcomeExactlyOneSideNonzero) {
  const auto interrupted = make_outcome(/*pred_end=*/100, /*succ_start=*/150, 48 * kHour);
  EXPECT_EQ(interrupted.interruption, 50);
  EXPECT_EQ(interrupted.overlap, 0);
  EXPECT_FALSE(interrupted.zero_interruption());

  const auto overlapped = make_outcome(100, 40, 48 * kHour);
  EXPECT_EQ(overlapped.interruption, 0);
  EXPECT_EQ(overlapped.overlap, 60);
  EXPECT_TRUE(overlapped.zero_interruption());
}

TEST(Reward, OverlapCappedBySuccessorRuntime) {
  const auto o = make_outcome(10 * kHour, 0, /*succ_runtime=*/2 * kHour);
  EXPECT_EQ(o.overlap, 2 * kHour);
}

TEST(Reward, ShapingUsesCoefficients) {
  RewardConfig rc;
  rc.e_interrupt = 2.0;
  rc.e_overlap = 0.5;
  EpisodeOutcome o;
  o.interruption = kHour;
  EXPECT_DOUBLE_EQ(shaped_reward(o, rc), -2.0);
  o = EpisodeOutcome{};
  o.overlap = 4 * kHour;
  EXPECT_DOUBLE_EQ(shaped_reward(o, rc), -2.0);
  EXPECT_DOUBLE_EQ(shaped_reward(EpisodeOutcome{}, rc), 0.0);  // perfect
}

// -------------------------------------------------------------------- Env

EpisodeConfig quick_episode() {
  EpisodeConfig ec;
  ec.job_runtime = 4 * kHour;
  ec.job_limit = 4 * kHour;
  ec.job_nodes = 1;
  ec.decision_interval = 10 * kMinute;
  ec.warmup = 2 * kHour;
  ec.history_len = 4;
  return ec;
}

TEST(Env, ReactiveOnEmptyClusterHasZeroOutcome) {
  // No background: predecessor starts immediately, successor submitted at
  // its end starts immediately -> zero interruption AND zero overlap.
  ProvisionEnv env({}, 8, quick_episode(), /*t0=*/kDay);
  while (env.step(0)) {
  }
  env.finish();
  EXPECT_EQ(env.outcome().interruption, 0);
  EXPECT_EQ(env.outcome().overlap, 0);
  EXPECT_DOUBLE_EQ(env.reward(), 0.0);
  EXPECT_EQ(env.successor_wait(), 0);
}

TEST(Env, ImmediateSubmitOverlapsFully) {
  ProvisionEnv env({}, 8, quick_episode(), kDay);
  env.step(1);  // submit at the first decision
  EXPECT_TRUE(env.done());
  // Successor starts immediately and runs alongside the whole predecessor.
  EXPECT_EQ(env.outcome().interruption, 0);
  EXPECT_NEAR(static_cast<double>(env.outcome().overlap), 4.0 * kHour, kMinute);
  EXPECT_LT(env.reward(), 0.0);
}

TEST(Env, BusyClusterReactiveSuffersInterruption) {
  // Overloaded stream: 1-node 6 h jobs arriving hourly on a 4-node cluster
  // (offered load 1.5x capacity), spanning well past the predecessor's
  // end, so the successor submitted reactively finds a backlog and waits.
  Trace background;
  for (int i = 0; i < 40; ++i) {
    JobRecord j;
    j.job_id = i;
    j.submit_time = kDay - kHour + i * kHour;
    j.num_nodes = 1;
    j.actual_runtime = 6 * kHour;
    j.time_limit = 6 * kHour;
    background.push_back(j);
  }
  EpisodeConfig ec = quick_episode();
  ProvisionEnv env(background, 4, ec, kDay);
  while (env.step(0)) {
  }
  env.finish();
  EXPECT_GT(env.outcome().interruption, 0);
  EXPECT_GT(env.successor_wait(), 0);
  EXPECT_LT(env.reward(), 0.0);
}

TEST(Env, ObservationDimensionsMatchConfig) {
  EpisodeConfig ec = quick_episode();
  ProvisionEnv env({}, 8, ec, kDay);
  EXPECT_EQ(env.observation(0.0f).size(), ec.history_len * kFrameDim);
  EXPECT_EQ(env.features().size(), summary_feature_count());
}

TEST(Env, EpisodesObservePerPartitionCapacityAndClusterEvents) {
  // Acceptance slice of the partition refactor: an episode configured with
  // partitions + a capacity event produces observations whose per-partition
  // free-capacity features reflect the event.
  EpisodeConfig ec = quick_episode();
  ec.partitions = {{"gpu", 8}, {"cpu", 8}};
  // The gpu pool goes down entirely well before the episode window.
  ec.cluster_events.push_back({kHour, sim::ClusterEventType::kNodeDown, 8, "gpu"});

  ProvisionEnv env({}, 16, ec, kDay);
  const std::size_t stride = frame_dim(2);
  const auto obs = env.observation(0.0f);
  ASSERT_EQ(obs.size(), ec.history_len * stride);
  // Newest frame: gpu pool has no capacity (encoded 0), cpu pool is free
  // except for the predecessor, which roams onto it.
  const float gpu_free = obs[(ec.history_len - 1) * stride + kStateVars + 0];
  const float cpu_free = obs[(ec.history_len - 1) * stride + kStateVars + 1];
  EXPECT_FLOAT_EQ(gpu_free, 0.0f);
  EXPECT_GT(cpu_free, 0.0f);

  // The episode still completes (the predecessor ran on the cpu pool).
  while (env.step(0)) {
  }
  if (!env.done()) env.finish();
  EXPECT_TRUE(env.done());
}

TEST(Env, DecisionCountsAndSubmitOffset) {
  EpisodeConfig ec = quick_episode();
  ProvisionEnv env({}, 8, ec, kDay);
  env.step(0);
  env.step(0);
  env.step(1);
  EXPECT_EQ(env.decisions(), 3u);
  // Submission happened two intervals after t0.
  EXPECT_EQ(env.submit_offset(), 2 * ec.decision_interval);
}

TEST(Env, PredecessorRemainingDecreases) {
  EpisodeConfig ec = quick_episode();
  ProvisionEnv env({}, 8, ec, kDay);
  const SimTime r0 = env.predecessor_remaining();
  env.step(0);
  env.step(0);
  EXPECT_LT(env.predecessor_remaining(), r0);
}

TEST(Env, SliceForEpisodeKeepsWindow) {
  trace::GeneratorOptions opt;
  opt.seed = 1;
  opt.job_count_scale = 0.2;
  trace::SyntheticTraceGenerator gen(trace::a100_preset(), opt);
  const auto full = gen.generate();
  EpisodeConfig ec = quick_episode();
  const SimTime t0 = 2 * util::kMonth;
  const auto window = slice_for_episode(full, t0, ec);
  EXPECT_LT(window.size(), full.size());
  for (const auto& j : window) {
    EXPECT_GE(j.submit_time, t0 - ec.warmup - 7 * kDay);
    EXPECT_LE(j.submit_time, t0 + ec.max_horizon + ec.job_limit);
    EXPECT_FALSE(j.scheduled());  // start/end cleared for replay
  }
}

// ----------------------------------------------------------- ReplayBuffer

TEST(ReplayBufferTest, RingEviction) {
  ReplayBuffer buf(3);
  for (int i = 0; i < 5; ++i) {
    buf.add(Experience{{static_cast<float>(i)}, 0, static_cast<float>(i)});
  }
  EXPECT_EQ(buf.size(), 3u);
  // Items 3, 4 must be present (0, 1 evicted).
  bool saw4 = false;
  for (std::size_t i = 0; i < buf.size(); ++i) saw4 |= (buf.at(i).reward == 4.0f);
  EXPECT_TRUE(saw4);
}

TEST(ReplayBufferTest, SampleReturnsValidPointers) {
  ReplayBuffer buf(10);
  for (int i = 0; i < 4; ++i) buf.add(Experience{{1.0f}, 1, 0.5f});
  Rng rng(1);
  const auto batch = buf.sample(8, rng);
  EXPECT_EQ(batch.size(), 8u);
  for (const auto* e : batch) EXPECT_FLOAT_EQ(e->reward, 0.5f);
}

// ------------------------------------------------------------------- DQN

TEST(DqnAgentTest, QPairAndGreedyConsistent) {
  DqnConfig cfg;
  cfg.foundation = nn::FoundationType::kTransformer;
  cfg.net = tiny_net();
  DqnAgent agent(cfg, 5);
  std::vector<float> obs(cfg.net.input_dim(), 0.1f);
  const auto [q0, q1] = agent.q_pair(obs);
  EXPECT_EQ(agent.act_greedy(obs), q1 > q0 ? 1 : 0);
}

TEST(DqnAgentTest, EpsilonScheduleDecays) {
  DqnConfig cfg;
  cfg.net = tiny_net();
  cfg.eps_start = 0.5f;
  cfg.eps_end = 0.05f;
  cfg.eps_decay_episodes = 10;
  DqnAgent agent(cfg, 5);
  EXPECT_FLOAT_EQ(agent.epsilon(0), 0.5f);
  EXPECT_FLOAT_EQ(agent.epsilon(10), 0.05f);
  EXPECT_FLOAT_EQ(agent.epsilon(1000), 0.05f);
  EXPECT_GT(agent.epsilon(5), agent.epsilon(9));
}

TEST(DqnAgentTest, PretrainingReducesRegressionLoss) {
  DqnConfig cfg;
  cfg.net = tiny_net();
  DqnAgent agent(cfg, 6);
  // Synthetic rule: reward = -3 when the busy fraction (var24 slot) is
  // high, else 0; submit action flips the sign contribution.
  Rng rng(7);
  std::vector<Experience> samples;
  for (int i = 0; i < 200; ++i) {
    Experience e;
    e.observation.assign(cfg.net.input_dim(), 0.0f);
    const bool busy = rng.bernoulli(0.5);
    for (std::size_t s = 0; s < cfg.net.history_len; ++s) {
      e.observation[s * kFrameDim + 23] = busy ? 1.0f : 0.0f;
    }
    e.action = rng.bernoulli(0.5) ? 1 : 0;
    e.reward = busy ? (e.action ? -1.0f : -3.0f) : 0.0f;
    samples.push_back(std::move(e));
  }
  PretrainConfig pc;
  pc.epochs = 30;
  const auto losses = pretrain_foundation(agent, samples, pc);
  ASSERT_EQ(losses.size(), 30u);
  EXPECT_LT(losses.back(), 0.5f * losses.front());
}

TEST(DqnAgentTest, TrainBatchRunsOnBuffer) {
  DqnConfig cfg;
  cfg.net = tiny_net();
  DqnAgent agent(cfg, 8);
  ReplayBuffer buf(64);
  for (int i = 0; i < 16; ++i) {
    buf.add(Experience{std::vector<float>(cfg.net.input_dim(), 0.1f), i % 2, -1.0f});
  }
  Rng rng(9);
  const float loss = agent.train_batch(buf, rng);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_GT(loss, 0.0f);
}

// -------------------------------------------------------------------- PG

TEST(PgAgentTest, InitialPolicyBiasedAgainstSubmit) {
  PgConfig cfg;
  cfg.net = tiny_net();
  PgAgent agent(cfg, 10);
  std::vector<float> obs(cfg.net.input_dim(), 0.1f);
  EXPECT_LT(agent.submit_probability(obs), 0.3f);
}

TEST(PgAgentTest, UpdateMovesPolicyTowardRewardedAction) {
  PgConfig cfg;
  cfg.net = tiny_net();
  cfg.lr = 5e-3f;
  cfg.entropy_bonus = 0.0f;
  PgAgent agent(cfg, 11);
  std::vector<float> obs(cfg.net.input_dim(), 0.2f);
  const float p_before = agent.submit_probability(obs);

  // Episodes that submit get reward 0; episodes that wait get -10. After
  // updates, P(submit) must rise.
  for (int round = 0; round < 20; ++round) {
    std::vector<PgEpisode> batch;
    PgEpisode good;
    good.observations = {obs};
    good.actions = {1};
    good.reward = 0.0f;
    PgEpisode bad;
    bad.observations = {obs};
    bad.actions = {0};
    bad.reward = -10.0f;
    batch.push_back(good);
    batch.push_back(bad);
    agent.update(batch);
  }
  EXPECT_GT(agent.submit_probability(obs), p_before + 0.1f);
}

TEST(PgAgentTest, SamplingFollowsProbability) {
  PgConfig cfg;
  cfg.net = tiny_net();
  cfg.initial_submit_bias = 0.0f;  // ~uniform policy at init
  PgAgent agent(cfg, 12);
  std::vector<float> obs(cfg.net.input_dim(), 0.0f);
  const float p = agent.submit_probability(obs);
  Rng rng(13);
  int submits = 0;
  for (int i = 0; i < 2000; ++i) submits += agent.act_sample(obs, rng);
  EXPECT_NEAR(submits / 2000.0, p, 0.05);
}

// ------------------------------------------------------- OfflineCollector

TEST(OfflineCollectorTest, ProducesBothSampleKinds) {
  trace::GeneratorOptions opt;
  opt.seed = 3;
  opt.job_count_scale = 0.3;
  trace::SyntheticTraceGenerator gen(trace::a100_preset(), opt);
  const auto full = gen.generate();

  EpisodeConfig ec = quick_episode();
  CollectorConfig cc;
  cc.anchors = 4;
  cc.probes = 4;
  cc.parallel = false;
  OfflineCollector collector(full, 76, ec, cc);
  const auto ds = collector.collect(10 * kDay, 40 * kDay);

  EXPECT_GE(ds.nn_samples.size(), cc.anchors * cc.probes);  // >= 1 per probe
  EXPECT_EQ(ds.tabular.size(), cc.anchors * cc.probes);     // 1 per probe
  std::size_t submits = 0;
  for (const auto& e : ds.nn_samples) {
    EXPECT_EQ(e.observation.size(), ec.history_len * kFrameDim);
    EXPECT_LE(e.reward, 0.0f);  // rewards are negative penalties
    submits += (e.action == 1);
  }
  EXPECT_EQ(submits, cc.anchors * cc.probes);
  for (std::size_t i = 0; i < ds.tabular.size(); ++i) {
    EXPECT_GE(ds.tabular.target(i), 0.0f);  // waits are non-negative hours
  }
}

TEST(OfflineCollectorTest, DeterministicForSeed) {
  trace::GeneratorOptions opt;
  opt.seed = 4;
  opt.job_count_scale = 0.2;
  trace::SyntheticTraceGenerator gen(trace::a100_preset(), opt);
  const auto full = gen.generate();
  EpisodeConfig ec = quick_episode();
  CollectorConfig cc;
  cc.anchors = 3;
  cc.probes = 3;
  cc.parallel = false;
  cc.seed = 77;
  OfflineCollector c1(full, 76, ec, cc), c2(full, 76, ec, cc);
  const auto a = c1.collect(10 * kDay, 30 * kDay);
  const auto b = c2.collect(10 * kDay, 30 * kDay);
  ASSERT_EQ(a.nn_samples.size(), b.nn_samples.size());
  for (std::size_t i = 0; i < a.nn_samples.size(); ++i) {
    EXPECT_EQ(a.nn_samples[i].action, b.nn_samples[i].action);
    EXPECT_FLOAT_EQ(a.nn_samples[i].reward, b.nn_samples[i].reward);
  }
}

}  // namespace
}  // namespace mirage::rl

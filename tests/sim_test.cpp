// Tests for the fast Slurm simulator, the reference (conservative
// backfill) simulator, and the §5.2 fidelity metrics.
#include <gtest/gtest.h>

#include <tuple>

#include "sim/fidelity.hpp"
#include "sim/reference_simulator.hpp"
#include "sim/simulator.hpp"
#include "trace/generator.hpp"

namespace mirage::sim {
namespace {

using trace::JobRecord;
using trace::Trace;
using util::kDay;
using util::kHour;
using util::kMinute;

JobRecord make_job(std::int64_t id, SimTime submit, std::int32_t nodes, SimTime runtime,
                   SimTime limit = 0, std::string partition = {}) {
  JobRecord j;
  j.job_id = id;
  j.job_name = "j" + std::to_string(id);
  j.submit_time = submit;
  j.num_nodes = nodes;
  j.actual_runtime = runtime;
  j.time_limit = limit ? limit : runtime;
  j.partition = std::move(partition);
  return j;
}

// ------------------------------------------------------------ Basic flow

TEST(Simulator, SingleJobRunsImmediately) {
  Simulator sim(4);
  sim.load_workload({make_job(1, 100, 2, 50)});
  sim.run_to_completion();
  EXPECT_EQ(sim.start_time(0), 100);
  EXPECT_EQ(sim.end_time(0), 150);
  EXPECT_EQ(sim.status(0), JobStatus::kCompleted);
  EXPECT_EQ(sim.free_nodes(), 4);
}

TEST(Simulator, JobQueuesWhenFull) {
  Simulator sim(4);
  sim.load_workload({make_job(1, 0, 4, 100), make_job(2, 10, 4, 100)});
  sim.run_to_completion();
  EXPECT_EQ(sim.start_time(0), 0);
  EXPECT_EQ(sim.start_time(1), 100);  // waits for the first to finish
}

TEST(Simulator, RuntimeCappedByTimeLimit) {
  Simulator sim(1);
  sim.load_workload({make_job(1, 0, 1, 500, /*limit=*/100)});
  sim.run_to_completion();
  EXPECT_EQ(sim.end_time(0), 100);  // killed at the limit, like Slurm
}

TEST(Simulator, RunUntilAdvancesTime) {
  Simulator sim(4);
  sim.load_workload({make_job(1, 100, 1, 50)});
  sim.run_until(70);
  EXPECT_EQ(sim.now(), 70);
  EXPECT_EQ(sim.status(0), JobStatus::kFuture);
  sim.step(40);  // to t=110
  EXPECT_EQ(sim.status(0), JobStatus::kRunning);
}

TEST(Simulator, SubmitInjectsAtCurrentInstant) {
  Simulator sim(4);
  sim.run_until(500);
  const JobId id = sim.submit(make_job(9, 0 /*ignored*/, 2, 100));
  EXPECT_EQ(sim.job(id).submit_time, 500);
  sim.run_to_completion();
  EXPECT_EQ(sim.start_time(id), 500);
}

TEST(Simulator, OversizeSubmissionThrows) {
  Simulator sim(4);
  EXPECT_THROW(sim.submit(make_job(1, 0, 5, 10)), std::invalid_argument);
  Trace w = {make_job(1, 0, 5, 10)};
  Simulator sim2(4);
  EXPECT_THROW(sim2.load_workload(w), std::invalid_argument);
}

TEST(Simulator, RunUntilStartedAndComplete) {
  Simulator sim(1);
  sim.load_workload({make_job(1, 0, 1, 100), make_job(2, 1, 1, 100)});
  sim.run_until(1);
  sim.run_until_started(1);
  EXPECT_EQ(sim.status(1), JobStatus::kRunning);
  EXPECT_EQ(sim.start_time(1), 100);
  sim.run_until_complete(1);
  EXPECT_EQ(sim.status(1), JobStatus::kCompleted);
}

// --------------------------------------------------------------- Priority

TEST(Simulator, FifoAmongEqualJobs) {
  Simulator sim(1);
  sim.load_workload({make_job(1, 0, 1, 100), make_job(2, 10, 1, 10), make_job(3, 5, 1, 10)});
  sim.run_to_completion();
  // Job 3 submitted before job 2; equal size, so age priority orders them.
  EXPECT_LT(sim.start_time(2), sim.start_time(1));
}

TEST(Simulator, SizeWeightFavorsLargeJobs) {
  SchedulerConfig cfg;
  cfg.age_weight = 0.0;  // isolate the size factor
  cfg.size_weight = 100.0;
  cfg.backfill = false;
  Simulator sim(4, cfg);
  sim.load_workload({make_job(1, 0, 4, 100), make_job(2, 1, 1, 10), make_job(3, 2, 4, 10)});
  sim.run_to_completion();
  // After job 1 releases, the 4-node job 3 outranks the older 1-node job 2.
  EXPECT_LT(sim.start_time(2), sim.start_time(1));
}

// --------------------------------------------------------------- Backfill

TEST(Simulator, EasyBackfillFillsHoles) {
  // 4 nodes. J1 holds 3 until t=100. J2 (4 nodes) blocks with shadow=100.
  // J3 (1 node, 10 s limit) fits in the idle node and ends before the
  // shadow -> backfills immediately despite lower priority than J2.
  Simulator sim(4);
  sim.load_workload({make_job(1, 0, 3, 100, 100), make_job(2, 1, 4, 100, 100),
                     make_job(3, 2, 1, 10, 10)});
  sim.run_to_completion();
  EXPECT_EQ(sim.start_time(0), 0);
  EXPECT_EQ(sim.start_time(1), 100);
  EXPECT_EQ(sim.start_time(2), 2);
}

TEST(Simulator, BackfillUsesIdleNodesBeforeShadow) {
  // 4 nodes. J1 uses 2 until t=100. J2 wants 4 -> blocked, shadow=100.
  // J3 (2 nodes, 50s limit) fits in the idle 2 nodes and ends before the
  // shadow -> backfills at t~2 despite lower priority than J2.
  Simulator sim(4);
  sim.load_workload({make_job(1, 0, 2, 100, 100), make_job(2, 1, 4, 100, 100),
                     make_job(3, 2, 2, 50, 50)});
  sim.run_to_completion();
  EXPECT_EQ(sim.start_time(2), 2);
  EXPECT_EQ(sim.start_time(1), 100);  // blocker not delayed by the backfill
}

TEST(Simulator, BackfillRejectsJobsThatWouldDelayBlocker) {
  // Same as above but J3's limit (200) crosses the shadow and it would
  // occupy nodes the blocker needs -> no backfill.
  Simulator sim(4);
  sim.load_workload({make_job(1, 0, 2, 200, 200), make_job(2, 1, 4, 100, 100),
                     make_job(3, 2, 2, 200, 200)});
  sim.run_to_completion();
  EXPECT_EQ(sim.start_time(1), 200);   // blocker at J1's release
  EXPECT_GE(sim.start_time(2), 200);   // J3 must not start before the blocker
}

TEST(Simulator, BackfillIntoExtraNodesBeyondReservation) {
  // 8 nodes. J1 holds 6 until t=100. J2 wants 8 -> shadow 100, extra = 0.
  // J3 (2 nodes, long limit) would overlap the shadow and extra=0 -> no.
  // J4 (2 nodes, short) ends before shadow -> yes.
  Simulator sim(8);
  sim.load_workload({make_job(1, 0, 6, 100, 100), make_job(2, 1, 8, 50, 50),
                     make_job(3, 2, 2, 500, 500), make_job(4, 3, 2, 20, 20)});
  sim.run_to_completion();
  EXPECT_GE(sim.start_time(2), 100);
  EXPECT_EQ(sim.start_time(3), 3);
}

TEST(Simulator, NoBackfillWhenDisabled) {
  SchedulerConfig cfg;
  cfg.backfill = false;
  Simulator sim(4, cfg);
  sim.load_workload({make_job(1, 0, 2, 100, 100), make_job(2, 1, 4, 100, 100),
                     make_job(3, 2, 2, 50, 50)});
  sim.run_to_completion();
  EXPECT_GE(sim.start_time(2), 100);  // would have backfilled at t=2
}

// ------------------------------------------------------------ StateSample

TEST(Simulator, SampleReflectsQueueAndRunning) {
  Simulator sim(4);
  sim.load_workload({make_job(1, 0, 4, 100, 100), make_job(2, 10, 2, 50, 60)});
  sim.run_until(20);
  const auto s = sim.sample();
  EXPECT_EQ(s.now, 20);
  EXPECT_EQ(s.total_nodes, 4);
  EXPECT_EQ(s.free_nodes, 0);
  ASSERT_EQ(s.queue_length(), 1u);
  EXPECT_DOUBLE_EQ(s.queued_sizes[0], 2.0);
  EXPECT_DOUBLE_EQ(s.queued_ages[0], 10.0);
  EXPECT_DOUBLE_EQ(s.queued_limits[0], 60.0);
  ASSERT_EQ(s.running_count(), 1u);
  EXPECT_DOUBLE_EQ(s.running_elapsed[0], 20.0);
  EXPECT_DOUBLE_EQ(s.running_limits[0], 100.0);
}

TEST(Simulator, RecentAverageWait) {
  Simulator sim(1);
  sim.load_workload({make_job(1, 0, 1, 100, 100), make_job(2, 0, 1, 10, 10)});
  sim.run_to_completion();  // now() == 110, the last finish event
  // Job 1 waited 0 (start 0); job 2 waited 100 (start 100).
  EXPECT_DOUBLE_EQ(sim.recent_average_wait(kDay), 50.0);
  // A 5 s look-back from t=110 only covers job 2's start at t=100? No —
  // 110-5=105 > 100, so nothing started in the window.
  EXPECT_DOUBLE_EQ(sim.recent_average_wait(5), 0.0);
  // A 20 s look-back covers exactly job 2's start.
  EXPECT_DOUBLE_EQ(sim.recent_average_wait(20), 100.0);
}

// --------------------------------------------------- Conservation & determinism

class SimulatorPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimulatorPropertyTest, ReplayInvariants) {
  trace::GeneratorOptions opt;
  opt.seed = GetParam();
  opt.job_count_scale = 0.05;
  const auto preset = trace::a100_preset();
  trace::SyntheticTraceGenerator gen(preset, opt);
  const auto workload = gen.generate_months(0, 2);
  const auto sched = replay_trace(workload, preset.node_count);
  ASSERT_EQ(sched.size(), workload.size());
  for (std::size_t i = 0; i < sched.size(); ++i) {
    // Every job runs, never before submission, for its capped duration.
    ASSERT_TRUE(sched[i].scheduled());
    EXPECT_GE(sched[i].start_time, sched[i].submit_time);
    EXPECT_EQ(sched[i].end_time - sched[i].start_time,
              std::min(workload[i].actual_runtime, workload[i].time_limit));
  }
  // Node capacity is never exceeded at any start instant.
  std::vector<std::pair<SimTime, std::int32_t>> deltas;
  for (const auto& j : sched) {
    deltas.emplace_back(j.start_time, j.num_nodes);
    deltas.emplace_back(j.end_time, -j.num_nodes);
  }
  std::sort(deltas.begin(), deltas.end(), [](auto& a, auto& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second < b.second;  // releases before allocations at ties
  });
  std::int32_t busy = 0;
  for (const auto& [t, d] : deltas) {
    busy += d;
    EXPECT_LE(busy, preset.node_count);
    EXPECT_GE(busy, 0);
  }
}

TEST_P(SimulatorPropertyTest, ReplayIsDeterministic) {
  trace::GeneratorOptions opt;
  opt.seed = GetParam() ^ 0xdead;
  opt.job_count_scale = 0.05;
  const auto preset = trace::a100_preset();
  trace::SyntheticTraceGenerator gen(preset, opt);
  const auto workload = gen.generate_months(0, 1);
  const auto a = replay_trace(workload, preset.node_count);
  const auto b = replay_trace(workload, preset.node_count);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].start_time, b[i].start_time);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorPropertyTest, ::testing::Values(1, 2, 3, 4, 5));

// ------------------------------------------------------------- Partitions

TEST(Partitions, ConstraintPinsJobsAndRoamersPickEarliestFit) {
  ClusterModel model(std::vector<Partition>{{"a", 2}, {"b", 2}});
  Simulator sim(model);
  sim.load_workload({
      make_job(1, 0, 2, 100, 100, "a"),  // holds a until 100
      make_job(2, 0, 2, 50, 50, "b"),    // holds b until 50
      make_job(3, 1, 2, 10, 10, "a"),    // pinned to a: must wait for job 1
      make_job(4, 2, 2, 10, 10),         // roams: b frees first
  });
  sim.run_to_completion();
  EXPECT_EQ(sim.start_time(2), 100);  // constraint honored despite b being free at 50
  EXPECT_EQ(sim.start_time(3), 50);   // roamer takes the earliest-fit partition
  EXPECT_EQ(sim.partition_count(), 2);
  EXPECT_EQ(sim.total_nodes(), 4);
}

TEST(Partitions, OversizeForPartitionThrows) {
  ClusterModel model(std::vector<Partition>{{"a", 2}, {"b", 4}});
  Simulator sim(model);
  // Pinned beyond the partition: rejected even though the cluster has 6.
  EXPECT_THROW(sim.submit(make_job(1, 0, 3, 10, 10, "a")), std::invalid_argument);
  // Roaming beyond the largest partition: rejected.
  EXPECT_THROW(sim.submit(make_job(2, 0, 5, 10, 10)), std::invalid_argument);
  // Unknown partition name: rejected with a diagnostic, not defaulted.
  EXPECT_THROW(sim.submit(make_job(3, 0, 1, 10, 10, "gpu")), std::invalid_argument);
  // Within the largest partition: fine.
  EXPECT_NO_THROW(sim.submit(make_job(4, 0, 4, 10, 10)));
}

TEST(Partitions, TargetedDownOnlyKillsInsideThePartition) {
  ClusterModel model(std::vector<Partition>{{"a", 2}, {"b", 2}});
  Simulator sim(model);
  sim.load_workload({make_job(1, 0, 2, 100, 100, "a"), make_job(2, 0, 2, 100, 100, "b")});
  sim.schedule_cluster_event({10, ClusterEventType::kNodeDown, 2, "b"});
  sim.run_to_completion();
  EXPECT_EQ(sim.status(0), JobStatus::kCompleted);  // partition a untouched
  EXPECT_EQ(sim.status(1), JobStatus::kKilled);
  EXPECT_EQ(sim.total_nodes(0), 2);
  EXPECT_EQ(sim.total_nodes(1), 0);
  EXPECT_EQ(sim.killed_jobs(), 1u);
}

TEST(Partitions, ClusterWideRestoreRefillsDownedPartitionsFirst) {
  ClusterModel model(std::vector<Partition>{{"a", 4}, {"b", 4}});
  Simulator sim(model);
  // b loses everything; a cluster-wide restore of 6 must refill b to its
  // nominal 4 before the surplus 2 expands partition 0 (a).
  sim.schedule_cluster_event({10, ClusterEventType::kNodeDown, 4, "b"});
  sim.schedule_cluster_event({20, ClusterEventType::kNodeRestore, 6});
  sim.run_to_completion();
  EXPECT_EQ(sim.total_nodes(1), 4);
  EXPECT_EQ(sim.total_nodes(0), 6);
  EXPECT_EQ(sim.total_nodes(), 10);
}

TEST(Partitions, EventTargetingUnknownPartitionThrows) {
  Simulator sim(4);
  EXPECT_THROW(sim.schedule_cluster_event({10, ClusterEventType::kNodeDown, 2, "gpu"}),
               std::invalid_argument);
}

// ------------------------------------------------------------- Preemption

TEST(Preemption, CheckpointsProgressAndRequeuesAfterDelay) {
  Simulator sim(4);
  sim.load_workload({make_job(1, 0, 4, 100, 200)});
  // Preempt the whole cluster at t=50 (job has 50 s of work left), restore
  // capacity at t=60; the victim requeues at 50+30=80 and finishes its
  // checkpointed remainder there.
  sim.schedule_cluster_event({50, ClusterEventType::kPreempt, 4, "", /*requeue=*/30});
  sim.schedule_cluster_event({60, ClusterEventType::kNodeRestore, 4});
  sim.run_to_completion();
  EXPECT_EQ(sim.status(0), JobStatus::kCompleted);
  EXPECT_EQ(sim.start_time(0), 80);      // restart instant
  EXPECT_EQ(sim.end_time(0), 130);       // 50 s remained after the checkpoint
  EXPECT_EQ(sim.preempted_jobs(), 1u);
  EXPECT_EQ(sim.killed_jobs(), 0u);
}

TEST(Preemption, StalePrePreemptionFinishDoesNotCompleteRestartedJob) {
  Simulator sim(4);
  sim.load_workload({make_job(1, 0, 4, 100, 200)});
  // Preempt at t=30 with instant requeue and instant restore: the job
  // restarts at t=30 with 70 s left -> must end at 100... which is exactly
  // when the stale pre-preemption finish event fires. The guard must let
  // only the matching finish complete it (end == 30 + 70 here, so both
  // coincide — also run a shifted variant below).
  sim.schedule_cluster_event({30, ClusterEventType::kPreempt, 4, "", 0});
  sim.schedule_cluster_event({30, ClusterEventType::kNodeRestore, 4});
  sim.run_to_completion();
  EXPECT_EQ(sim.status(0), JobStatus::kCompleted);
  EXPECT_EQ(sim.end_time(0), 100);

  // Shifted: requeue delay 25 pushes the real end past the stale finish.
  Simulator sim2(4);
  sim2.load_workload({make_job(1, 0, 4, 100, 200)});
  sim2.schedule_cluster_event({30, ClusterEventType::kPreempt, 4, "", 25});
  sim2.schedule_cluster_event({40, ClusterEventType::kNodeRestore, 4});
  sim2.run_to_completion();
  EXPECT_EQ(sim2.status(0), JobStatus::kCompleted);
  EXPECT_EQ(sim2.start_time(0), 55);
  EXPECT_EQ(sim2.end_time(0), 125);  // stale finish at t=100 must not fire
}

// ------------------------------------------------------ Correlated failures

TEST(CorrelatedDown, ExpansionIsDeterministicAndRackSized) {
  const auto run_once = [](std::uint64_t seed) {
    ClusterModel model(std::vector<Partition>{{"a", 4}, {"b", 4}, {"c", 4}});
    Simulator sim(model);
    ClusterEvent ev{10, ClusterEventType::kCorrelatedDown, 8};
    ev.rack_size = 4;
    ev.seed = seed;
    sim.schedule_cluster_event(ev);
    sim.run_to_completion();
    return std::tuple{sim.total_nodes(), sim.total_nodes(0), sim.total_nodes(1),
                      sim.total_nodes(2)};
  };
  // Same seed -> same burst, bitwise.
  EXPECT_EQ(run_once(7), run_once(7));
  // The burst removes 1..2 whole racks of 4.
  const auto [total, a, b, c] = run_once(7);
  EXPECT_TRUE(total == 8 || total == 4) << total;
  for (const std::int32_t part : {a, b, c}) {
    EXPECT_TRUE(part == 0 || part == 4) << part;
  }
}

TEST(CorrelatedDown, TargetedBurstStaysInsidePartition) {
  ClusterModel model(std::vector<Partition>{{"a", 4}, {"b", 8}});
  Simulator sim(model);
  ClusterEvent ev{10, ClusterEventType::kCorrelatedDown, 8, "b"};
  ev.rack_size = 4;
  ev.seed = 99;
  sim.schedule_cluster_event(ev);
  sim.run_to_completion();
  EXPECT_EQ(sim.total_nodes(0), 4);     // partition a untouched
  EXPECT_LT(sim.total_nodes(1), 8);     // b lost at least one rack
  EXPECT_EQ(sim.total_nodes(1) % 4, 0); // in whole racks
}

// ------------------------------------------------- Event string round-trip

TEST(ClusterEventText, RoundTripCoversEveryType) {
  ClusterEvent ev{100, ClusterEventType::kPreempt, 4, "gpu", 60};
  EXPECT_EQ(to_string(ev), "preempt,100,4,partition=gpu,requeue_delay=60");
  ClusterEvent parsed;
  std::string error;
  ASSERT_TRUE(parse_cluster_event(to_string(ev), parsed, &error)) << error;
  EXPECT_EQ(parsed.type, ev.type);
  EXPECT_EQ(parsed.time, ev.time);
  EXPECT_EQ(parsed.nodes, ev.nodes);
  EXPECT_EQ(parsed.partition, ev.partition);
  EXPECT_EQ(parsed.requeue_delay, ev.requeue_delay);

  for (const auto type :
       {ClusterEventType::kNodeDown, ClusterEventType::kDrain, ClusterEventType::kNodeRestore,
        ClusterEventType::kPreempt, ClusterEventType::kCorrelatedDown}) {
    ClusterEvent original{42, type, 3, "pool", 5};
    original.rack_size = 2;
    original.seed = 17;
    ClusterEvent back;
    ASSERT_TRUE(parse_cluster_event(to_string(original), back, &error)) << error;
    EXPECT_EQ(back.type, original.type);
    EXPECT_EQ(to_string(back), to_string(original));
  }
}

TEST(ClusterEventText, UnknownNamesAreRejectedWithDiagnostic) {
  ClusterEvent ev;
  std::string error;
  EXPECT_FALSE(parse_cluster_event("explode,5,2", ev, &error));
  EXPECT_NE(error.find("unknown cluster event type"), std::string::npos) << error;
  ClusterEventType type;
  error.clear();
  EXPECT_FALSE(parse_cluster_event_type("nuke", type, &error));
  EXPECT_NE(error.find("nuke"), std::string::npos) << error;
  // Malformed keyword fields are diagnosed, not silently dropped.
  EXPECT_FALSE(parse_cluster_event("down,5,2,cron=weekly", ev, &error));
  EXPECT_FALSE(parse_cluster_event("down,5,2,requeue_delay=-3", ev, &error));
  EXPECT_FALSE(parse_cluster_event("down,-5,2", ev, &error));
  EXPECT_FALSE(parse_cluster_event("down,5", ev, &error));
}

// ------------------------------------- Incremental availability profiles

// The incremental earliest_fit sweep must return exactly what the
// pre-incremental quadratic candidate scan returned, on any profile the
// scheduler can build. The oracle below *is* that old algorithm, run
// against a mirror profile built by the same operations.
namespace oracle {

struct Step {
  SimTime time;
  std::int32_t free;
};

struct Profile {
  std::vector<Step> steps;
  static constexpr SimTime kFar = AvailabilityProfile::kFar;

  explicit Profile(SimTime now, std::int32_t free) { steps.push_back({now, free}); }

  void ensure_step(SimTime t) {
    for (std::size_t i = 0; i < steps.size(); ++i) {
      if (steps[i].time == t) return;
      if (steps[i].time > t) {
        const std::int32_t inherited = (i == 0) ? steps[0].free : steps[i - 1].free;
        steps.insert(steps.begin() + static_cast<std::ptrdiff_t>(i), {t, inherited});
        return;
      }
    }
    steps.push_back({t, steps.back().free});
  }
  void adjust(SimTime from, SimTime to, std::int32_t delta) {
    ensure_step(from);
    if (to < kFar) ensure_step(to);
    for (auto& s : steps) {
      if (s.time >= from && s.time < to) s.free += delta;
    }
  }
  void add_release(SimTime t, std::int32_t nodes) { adjust(t, kFar, nodes); }
  void reserve(SimTime start, SimTime len, std::int32_t req) {
    adjust(start, len >= kFar ? kFar : start + len, -req);
  }
  std::int32_t free_at(SimTime t) const {
    std::int32_t free = steps.front().free;
    for (const auto& s : steps) {
      if (s.time > t) break;
      free = s.free;
    }
    return free;
  }
  bool window_fits(SimTime start, std::int32_t req, SimTime len) const {
    const SimTime end = (len >= kFar) ? kFar : start + len;
    if (free_at(start) < req) return false;
    for (const auto& s : steps) {
      if (s.time <= start) continue;
      if (s.time >= end) break;
      if (s.free < req) return false;
    }
    return true;
  }
  SimTime earliest_fit(SimTime from, std::int32_t req, SimTime len) const {
    for (std::size_t i = 0; i < steps.size(); ++i) {
      const SimTime candidate = std::max(from, steps[i].time);
      if (i + 1 < steps.size() && candidate >= steps[i + 1].time) continue;
      if (window_fits(candidate, req, len)) return candidate;
    }
    return kFar;
  }
};

}  // namespace oracle

TEST(AvailabilityProfile, EarliestFitMatchesQuadraticOracle) {
  util::Rng rng(0xfee7);
  for (int trial = 0; trial < 300; ++trial) {
    const std::int32_t free0 = static_cast<std::int32_t>(rng.uniform_int(0, 8));
    AvailabilityProfile prof(0, free0);
    oracle::Profile ref(0, free0);
    // Build a random but scheduler-shaped profile: positive releases at
    // random times, then reservations placed exactly where the scheduler
    // would (at the earliest fit), which can carve non-monotone dips.
    const int releases = static_cast<int>(rng.uniform_int(0, 8));
    for (int r = 0; r < releases; ++r) {
      const SimTime t = rng.uniform_int(1, 500);
      const auto nodes = static_cast<std::int32_t>(rng.uniform_int(1, 6));
      prof.add_release(t, nodes);
      ref.add_release(t, nodes);
    }
    const int reservations = static_cast<int>(rng.uniform_int(0, 6));
    for (int r = 0; r < reservations; ++r) {
      const auto req = static_cast<std::int32_t>(rng.uniform_int(1, 6));
      const SimTime len = rng.uniform_int(1, 300);
      const SimTime at = ref.earliest_fit(0, req, len);
      if (at >= oracle::Profile::kFar) continue;
      prof.reserve(at, len, req);
      ref.reserve(at, len, req);
    }
    for (int q = 0; q < 20; ++q) {
      const SimTime from = rng.uniform_int(0, 600);
      const auto req = static_cast<std::int32_t>(rng.uniform_int(1, 10));
      const SimTime len = rng.uniform_int(1, 400);
      ASSERT_EQ(prof.earliest_fit(from, req, len), ref.earliest_fit(from, req, len))
          << "trial " << trial << " from=" << from << " req=" << req << " len=" << len;
    }
  }
}

// Randomized event storms with the per-pass incremental==from-scratch
// cross-check enabled (SchedulerConfig::validate_profiles): the simulator
// rebuilds every scanned partition's availability profile from its running
// set each pass and throws std::logic_error on any divergence from the
// incrementally maintained one. Any bug in the O(Δ) updates — job starts,
// early releases, preemption checkpoints, kill/drain/restore/correlated
// capacity edits, or the advance-and-compact resync — fails loudly here.
class IncrementalProfileStorm : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IncrementalProfileStorm, IncrementalMatchesFromScratchUnderEventStorms) {
  util::Rng rng(0x19c4'0000 + GetParam());
  for (int trial = 0; trial < 5; ++trial) {
    const auto nparts = static_cast<std::int32_t>(rng.uniform_int(1, 3));
    std::vector<Partition> parts;
    std::vector<std::string> names;
    for (std::int32_t p = 0; p < nparts; ++p) {
      names.push_back("p" + std::to_string(p));
      parts.push_back({names.back(), static_cast<std::int32_t>(rng.uniform_int(2, 8))});
    }
    const ClusterModel model(parts);

    const auto n = static_cast<std::size_t>(rng.uniform_int(10, 50));
    Trace w;
    for (std::size_t i = 0; i < n; ++i) {
      const SimTime runtime = rng.uniform_int(1, 500);
      const SimTime limit = runtime + rng.uniform_int(0, 300);
      std::string constraint;
      std::int32_t ceiling = model.max_partition_nominal();
      if (rng.bernoulli(0.7)) {
        const auto p = static_cast<std::size_t>(rng.uniform_int(0, nparts - 1));
        constraint = names[p];
        ceiling = parts[p].nodes;
      }
      w.push_back(make_job(static_cast<std::int64_t>(i + 1), rng.uniform_int(0, 3000),
                           static_cast<std::int32_t>(rng.uniform_int(1, ceiling)), runtime,
                           limit, constraint));
    }

    SchedulerConfig cfg;
    cfg.validate_profiles = true;  // cross-check every scanned partition, every pass
    cfg.age_weight = rng.uniform(0.0, 2000.0);
    cfg.size_weight = rng.uniform(-200.0, 200.0);
    cfg.reservation_depth = static_cast<std::int32_t>(rng.uniform_int(1, 16));
    cfg.max_backfill_candidates = static_cast<std::int32_t>(rng.uniform_int(1, 64));

    Simulator sim(model, cfg);
    sim.load_workload(w);
    const auto n_events = static_cast<std::size_t>(rng.uniform_int(0, 8));
    for (std::size_t e = 0; e < n_events; ++e) {
      ClusterEvent ev;
      ev.time = rng.uniform_int(0, 3500);
      ev.nodes = static_cast<std::int32_t>(rng.uniform_int(1, 6));
      if (rng.bernoulli(0.5)) {
        ev.partition = names[static_cast<std::size_t>(rng.uniform_int(0, nparts - 1))];
      }
      switch (rng.uniform_int(0, 4)) {
        case 0: ev.type = ClusterEventType::kNodeDown; break;
        case 1: ev.type = ClusterEventType::kDrain; break;
        case 2: ev.type = ClusterEventType::kNodeRestore; break;
        case 3:
          ev.type = ClusterEventType::kPreempt;
          ev.requeue_delay = rng.uniform_int(0, 300);
          break;
        default:
          ev.type = ClusterEventType::kCorrelatedDown;
          ev.rack_size = static_cast<std::int32_t>(rng.uniform_int(1, 3));
          ev.seed = rng.next_u64();
          break;
      }
      sim.schedule_cluster_event(ev);
    }
    // A divergence throws std::logic_error and fails the test with it.
    // (Jobs pinned to a downed-and-never-restored partition legitimately
    // stay pending, so completion itself is not asserted.)
    sim.run_to_completion();
    EXPECT_EQ(sim.job_count(), n);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalProfileStorm,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ------------------------------------------------------ Reference simulator

TEST(ReferenceSimulator, MatchesFastOnTrivialWorkload) {
  Trace w = {make_job(1, 0, 2, 100, 100), make_job(2, 10, 1, 50, 50),
             make_job(3, 20, 1, 30, 30)};
  const auto fast = replay_trace(w, 4);
  const auto ref = reference_replay(w, 4);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_EQ(fast[i].start_time, ref[i].start_time) << i;
  }
}

TEST(ReferenceSimulator, ConservativeBackfillNeverDelaysHigherPriority) {
  // The blocker must start no later than under plain FIFO-without-backfill.
  Trace w = {make_job(1, 0, 2, 100, 100), make_job(2, 1, 4, 100, 100),
             make_job(3, 2, 2, 50, 50), make_job(4, 3, 1, 400, 400)};
  SchedulerConfig no_bf;
  no_bf.backfill = false;
  const auto fifo = replay_trace(w, 4, no_bf);
  const auto ref = reference_replay(w, 4);
  EXPECT_LE(ref[1].start_time, fifo[1].start_time);
}

TEST(ReferenceSimulator, FidelityWithinPaperBounds) {
  // §5.2: makespan diff < 2.5%, JCT geomean diff < 15% on sampled weeks.
  // Reservation depth 16 is the fidelity-oriented configuration (the
  // pipeline default of 8 trades a little JCT fidelity for speed).
  trace::GeneratorOptions opt;
  opt.seed = 11;
  trace::SyntheticTraceGenerator gen(trace::a100_preset(), opt);
  auto workload = gen.generate_months(1, 2);
  SchedulerConfig cfg;
  cfg.reservation_depth = 16;
  const auto fast = replay_trace(workload, 76, cfg);
  const auto ref = reference_replay(workload, 76);
  const auto rep = compare_schedules(fast, ref);
  EXPECT_LT(rep.makespan_rel_diff, 0.025);
  EXPECT_LT(rep.jct_geomean_ratio, 1.15);
  EXPECT_GT(rep.compared_jobs, 1000u);
}

// ------------------------------------------------------- Differential fuzz

// Random small traces + random scheduler configs through both simulators.
// At reservation_depth == queue length (and an unbounded candidate scan)
// the fast simulator implements the same conservative-backfill policy as
// the reference, so schedules — and therefore makespans — must be
// identical. At the default depth the policies differ by design; mean
// queue wait may diverge, but only within a bounded factor.
class DifferentialFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialFuzz, FastEqualsReferenceAtFullDepthBoundedAtDefault) {
  util::Rng rng(0x5eed0000 + GetParam());
  for (int trial = 0; trial < 8; ++trial) {
    const std::int32_t nodes = static_cast<std::int32_t>(rng.uniform_int(2, 12));
    const auto n = static_cast<std::size_t>(rng.uniform_int(5, 40));
    Trace w;
    for (std::size_t i = 0; i < n; ++i) {
      const SimTime runtime = rng.uniform_int(1, 500);
      const SimTime limit = runtime + rng.uniform_int(0, 300);
      w.push_back(make_job(static_cast<std::int64_t>(i + 1), rng.uniform_int(0, 2000),
                           static_cast<std::int32_t>(rng.uniform_int(1, nodes)), runtime, limit));
    }
    SchedulerConfig cfg;
    cfg.age_weight = rng.uniform(0.0, 2000.0);
    cfg.size_weight = rng.uniform(-200.0, 200.0);
    cfg.age_cap = rng.uniform_int(kHour, 7 * kDay);

    // Full depth: bitwise-identical schedules.
    SchedulerConfig full = cfg;
    full.reservation_depth = static_cast<std::int32_t>(n);
    full.max_backfill_candidates = static_cast<std::int32_t>(n);
    const auto fast_full = replay_trace(w, nodes, full);
    const auto ref = reference_replay(w, nodes, cfg);
    SimTime makespan_fast = 0, makespan_ref = 0;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(fast_full[i].start_time, ref[i].start_time)
          << "trial " << trial << " job " << i << " nodes " << nodes;
      makespan_fast = std::max(makespan_fast, fast_full[i].end_time);
      makespan_ref = std::max(makespan_ref, ref[i].end_time);
    }
    EXPECT_EQ(makespan_fast, makespan_ref);

    // Default depth: bounded mean-wait divergence.
    const auto fast_default = replay_trace(w, nodes, cfg);
    double wait_fast = 0, wait_ref = 0;
    for (std::size_t i = 0; i < n; ++i) {
      wait_fast += static_cast<double>(fast_default[i].wait_time());
      wait_ref += static_cast<double>(ref[i].wait_time());
    }
    wait_fast /= static_cast<double>(n);
    wait_ref /= static_cast<double>(n);
    // EASY-style capped reservations vs conservative: allow a generous but
    // bounded gap (paper §5.2 reports single-digit-% JCT differences; tiny
    // adversarial traces are noisier, so bound at half the larger wait
    // plus 60 s of slack).
    EXPECT_LE(std::abs(wait_fast - wait_ref), 0.5 * std::max(wait_fast, wait_ref) + 60.0)
        << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzz, ::testing::Values(1, 2, 3, 4, 5, 6));

// Partitioned differential fuzz: random multi-partition clusters, random
// partition-constrained/roaming jobs, and random event storms — outages,
// drains, restores, preemption bursts, correlated rack failures, both
// partition-targeted and cluster-wide — through both simulators. At full
// reservation depth the policies coincide, and events run through the one
// shared EventKernel, so schedules and victim counts must be bitwise
// identical.
class PartitionedDifferentialFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PartitionedDifferentialFuzz, FastEqualsReferenceUnderEventStorms) {
  util::Rng rng(0xfa57'0000 + GetParam());
  for (int trial = 0; trial < 8; ++trial) {
    const auto nparts = static_cast<std::int32_t>(rng.uniform_int(1, 3));
    std::vector<Partition> parts;
    std::vector<std::string> names;
    for (std::int32_t p = 0; p < nparts; ++p) {
      names.push_back("p" + std::to_string(p));
      parts.push_back({names.back(), static_cast<std::int32_t>(rng.uniform_int(2, 8))});
    }
    const ClusterModel model(parts);

    const auto n = static_cast<std::size_t>(rng.uniform_int(5, 30));
    Trace w;
    for (std::size_t i = 0; i < n; ++i) {
      const SimTime runtime = rng.uniform_int(1, 500);
      const SimTime limit = runtime + rng.uniform_int(0, 300);
      std::string constraint;
      std::int32_t ceiling = model.max_partition_nominal();
      if (rng.bernoulli(0.7)) {  // 70% pinned, 30% roaming
        const auto p = static_cast<std::size_t>(rng.uniform_int(0, nparts - 1));
        constraint = names[p];
        ceiling = parts[p].nodes;
      }
      w.push_back(make_job(static_cast<std::int64_t>(i + 1), rng.uniform_int(0, 2000),
                           static_cast<std::int32_t>(rng.uniform_int(1, ceiling)), runtime,
                           limit, constraint));
    }

    std::vector<ClusterEvent> events;
    const auto n_events = static_cast<std::size_t>(rng.uniform_int(0, 8));
    for (std::size_t e = 0; e < n_events; ++e) {
      ClusterEvent ev;
      ev.time = rng.uniform_int(0, 2500);
      ev.nodes = static_cast<std::int32_t>(rng.uniform_int(1, 6));
      if (rng.bernoulli(0.5)) {
        ev.partition = names[static_cast<std::size_t>(rng.uniform_int(0, nparts - 1))];
      }
      switch (rng.uniform_int(0, 4)) {
        case 0: ev.type = ClusterEventType::kNodeDown; break;
        case 1: ev.type = ClusterEventType::kDrain; break;
        case 2: ev.type = ClusterEventType::kNodeRestore; break;
        case 3:
          ev.type = ClusterEventType::kPreempt;
          ev.requeue_delay = rng.uniform_int(0, 300);
          break;
        default:
          ev.type = ClusterEventType::kCorrelatedDown;
          ev.rack_size = static_cast<std::int32_t>(rng.uniform_int(1, 3));
          ev.seed = rng.next_u64();
          break;
      }
      events.push_back(ev);
    }

    SchedulerConfig cfg;
    cfg.age_weight = rng.uniform(0.0, 2000.0);
    cfg.size_weight = rng.uniform(-200.0, 200.0);
    cfg.age_cap = rng.uniform_int(kHour, 7 * kDay);
    cfg.reservation_depth = static_cast<std::int32_t>(n);
    cfg.max_backfill_candidates = static_cast<std::int32_t>(n);
    // Also cross-check the incremental profiles against the from-scratch
    // construction on every pass of the fast simulator (the reference
    // ignores the flag), so the fuzz pins both contracts at once.
    cfg.validate_profiles = true;

    Simulator fast(model, cfg);
    fast.load_workload(w);
    for (const auto& ev : events) fast.schedule_cluster_event(ev);
    fast.run_to_completion();
    const auto fast_schedule = fast.export_schedule();

    std::uint64_t passes = 0;
    std::size_t killed = 0, preempted = 0;
    const auto ref_schedule =
        reference_replay(w, model, events, cfg, &passes, &killed, &preempted);

    ASSERT_EQ(fast_schedule.size(), ref_schedule.size());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(fast_schedule[i].start_time, ref_schedule[i].start_time)
          << "trial " << trial << " job " << i << " parts " << nparts;
      EXPECT_EQ(fast_schedule[i].end_time, ref_schedule[i].end_time)
          << "trial " << trial << " job " << i;
    }
    EXPECT_EQ(fast.killed_jobs(), killed) << "trial " << trial;
    EXPECT_EQ(fast.preempted_jobs(), preempted) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionedDifferentialFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12));

// ----------------------------------------------------------------- Fidelity

TEST(Fidelity, IdenticalSchedulesPerfectScore) {
  Trace w = {make_job(1, 0, 1, 100, 100)};
  const auto s = replay_trace(w, 4);
  const auto rep = compare_schedules(s, s);
  EXPECT_DOUBLE_EQ(rep.makespan_rel_diff, 0.0);
  EXPECT_DOUBLE_EQ(rep.jct_geomean_ratio, 1.0);
}

TEST(Fidelity, RatioFoldedAboveOne) {
  Trace a = {make_job(1, 0, 1, 100, 100)};
  Trace b = a;
  a[0].start_time = 0;
  a[0].end_time = 100;
  b[0].start_time = 100;
  b[0].end_time = 200;
  const auto r1 = compare_schedules(a, b);
  const auto r2 = compare_schedules(b, a);
  EXPECT_GE(r1.jct_geomean_ratio, 1.0);
  EXPECT_NEAR(r1.jct_geomean_ratio, r2.jct_geomean_ratio, 1e-9);
}

}  // namespace
}  // namespace mirage::sim

// Experiment lab tests: plan round-trip + malformed-plan error paths,
// leaderboard aggregation and CSV escaping, artifact-store manifest
// round-trips and stale-plan rejection, the runner's parallel==serial and
// kill/resume bitwise determinism contracts, and promotion of the winning
// checkpoint into a live ProvisioningService under concurrent sessions.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <set>
#include <thread>

#include "lab/artifact_store.hpp"
#include "lab/experiment.hpp"
#include "lab/leaderboard.hpp"
#include "lab/promote.hpp"
#include "lab/runner.hpp"
#include "serve/service.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"

namespace mirage::lab {
namespace {

namespace fs = std::filesystem;

/// Unique scratch dir per test, removed on destruction.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag) {
    path = fs::temp_directory_path() / ("mirage_lab_" + tag);
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string dir(const std::string& name) const { return (path / name).string(); }
};

/// Tiny but non-degenerate plan: 2 cells (one with a recurring flash-crowd
/// burst that lands in the validation range), heuristic + one RL method.
ExperimentPlan tiny_plan(const std::string& name, std::uint64_t seed = 42) {
  using scenario::ScenarioEventKind;
  ExperimentPlan plan;
  plan.name = name;
  plan.methods = {core::Method::kAvg, core::Method::kMoeDqn};
  plan.budget.collector_anchors = 6;
  plan.budget.pretrain_epochs = 2;
  plan.budget.online_episodes = 8;
  plan.budget.eval_episodes = 6;

  auto& base = plan.matrix.base;
  base.cluster = "a100";
  base.nodes_override = 20;
  base.months_begin = 0;
  base.months_end = 1;
  base.seed = seed;
  base.job_count_scale = 0.3;

  scenario::EventProfile flash;
  flash.name = "flash";
  flash.events = {{ScenarioEventKind::kBurst, 5 * util::kDay, 2, 20, 2 * util::kHour,
                   4 * util::kHour, util::kHour, util::kWeek, 4}};
  plan.matrix.event_profiles = {{"none", {}}, flash};
  return plan;
}

// ---------------------------------------------------------------- Plan IO

TEST(ExperimentPlan, TextRoundTripIsExactAndHashStable) {
  const auto plan = tiny_plan("roundtrip");
  const std::string text = plan.to_text();
  std::string error;
  const auto parsed = parse_plan(text, &error);
  ASSERT_TRUE(parsed) << error;
  EXPECT_EQ(parsed->to_text(), text);
  EXPECT_EQ(parsed->hash(), plan.hash());
  EXPECT_EQ(parsed->methods, plan.methods);
  EXPECT_EQ(parsed->budget, plan.budget);
  EXPECT_EQ(parsed->matrix.event_profiles.size(), 2u);
  EXPECT_EQ(parsed->matrix.event_profiles[1].events[0].repeat_count, 4);
  EXPECT_EQ(parsed->matrix.base.nodes_override, 20);
}

TEST(ExperimentPlan, FileRoundTripPreservesJobExpansion) {
  TempDir tmp("planfile");
  const auto plan = tiny_plan("file");
  ASSERT_TRUE(save_plan_file(plan, tmp.dir("plan.txt")));
  std::string error;
  const auto loaded = load_plan_file(tmp.dir("plan.txt"), &error);
  ASSERT_TRUE(loaded) << error;
  const auto a = expand_jobs(plan);
  const auto b = expand_jobs(*loaded);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id(), b[i].id());
    EXPECT_EQ(a[i].cell.seed, b[i].cell.seed);
    EXPECT_EQ(a[i].cell.name, b[i].cell.name);
  }
}

TEST(ExperimentPlan, MalformedPlansErrorWithoutCrashing) {
  const auto expect_bad = [](const std::string& text, const std::string& needle) {
    std::string error;
    const auto plan = parse_plan(text, &error);
    EXPECT_FALSE(plan) << "accepted: " << text;
    EXPECT_NE(error.find(needle), std::string::npos) << "diagnostic was: " << error;
  };
  expect_bad("methods=avg\nnot a key value line\n", "key=value");
  expect_bad("methods=warp_drive\n", "unknown method");
  expect_bad("methods=avg\nbogus_knob=3\n", "unknown key");
  expect_bad("methods=avg\neval_episodes=zero\n", "bad value");
  expect_bad("name=x\n", "methods");
  expect_bad("methods=avg\nprofile.0.event.0=down,100,4\n", "no name");
  expect_bad("methods=avg\nprofile.0.name=p\nprofile.0.event.0=down,-1,4\n", "bad event time");
  expect_bad("methods=avg\nbase.months_begin=3\nbase.months_end=1\n", "months_end");
  // Recurring expansion past the horizon is caught by the embedded base
  // scenario validation.
  expect_bad(
      "methods=avg\nbase.event.0=down,86400,4,repeat_every=864000,repeat_count=9\n",
      "horizon");
  // ... and the same semantic checks cover every (cluster, profile)
  // combination the matrix would expand, not just the base spec.
  expect_bad(
      "methods=avg\nprofile.0.name=calendar\n"
      "profile.0.event.0=down,86400,4,repeat_every=864000,repeat_count=9\n",
      "horizon");
  expect_bad("methods=avg\nclusters=a100,v1000\n", "unknown cluster");
  expect_bad(
      "methods=avg\nclusters=v100\nprofile.0.name=big\n"
      "profile.0.event.0=burst,86400,999,4,3600,3600\n",
      "more nodes");
  expect_bad("methods=avg,moe_dqn,avg\n", "duplicate method");
  expect_bad("methods=avg\nname=../../escape\n", "path component");
  expect_bad("methods=avg\nname=nested/run\n", "path component");
  expect_bad("methods=avg\njob_nodes=4294967297\n", "bad value");  // int32 wrap
}

TEST(ExperimentPlan, StoreAndRunnerGuardProgrammaticPlans) {
  // parse_plan is bypassed when plans are built in code; the store and
  // runner must still refuse path-escaping names and duplicate methods.
  TempDir tmp("guards");
  auto evil = tiny_plan("ok");
  evil.name = "../escape";
  ArtifactStore store(tmp.dir("store"));
  std::string error;
  EXPECT_FALSE(store.init_run(evil, &error));
  EXPECT_NE(error.find("path component"), std::string::npos);
  EXPECT_THROW((void)LabRunner::run_serial(evil, store), std::runtime_error);

  auto dup = tiny_plan("dup");
  dup.methods = {core::Method::kAvg, core::Method::kAvg};
  ArtifactStore dup_store(tmp.dir("dup"));
  EXPECT_THROW((void)LabRunner::run_serial(dup, dup_store), std::invalid_argument);
}

TEST(ExperimentPlan, JobIdsAreCellMajorAndStable) {
  const auto plan = tiny_plan("ids");
  const auto jobs = expand_jobs(plan);
  ASSERT_EQ(jobs.size(), plan.job_count());
  EXPECT_EQ(jobs[0].id(), "c000__avg");
  EXPECT_EQ(jobs[1].id(), "c000__moe_dqn");
  EXPECT_EQ(jobs[2].id(), "c001__avg");
  EXPECT_EQ(jobs[3].id(), "c001__moe_dqn");
  EXPECT_NE(jobs[0].cell.seed, jobs[2].cell.seed);  // per-cell seeds differ
  EXPECT_EQ(jobs[0].cell.seed, jobs[1].cell.seed);  // methods share the cell
}

// ------------------------------------------------------------ Leaderboard

JobResult make_row(std::size_t cell_index, const std::string& cell, const std::string& method,
                   bool eventful, std::size_t episodes, double wait, double zero,
                   const std::string& checkpoint = "") {
  JobResult r;
  r.cell_index = cell_index;
  r.cell = cell;
  r.cluster = "a100";
  r.seed = 7;
  r.method = method;
  r.eventful = eventful;
  r.episodes = episodes;
  r.mean_interruption_h = wait;
  r.max_interruption_h = 2 * wait;
  r.mean_overlap_h = 0.5;
  r.zero_fraction = zero;
  r.cell_load = "light";
  r.checkpoint = checkpoint;
  return r;
}

TEST(Leaderboard, AggregatesAndRanksPerMethod) {
  std::vector<JobResult> rows;
  rows.push_back(make_row(0, "calm", "slow", false, 10, 4.0, 0.2));
  rows.push_back(make_row(0, "calm", "fast", false, 10, 1.0, 0.5, "c000__fast.ckpt"));
  rows.push_back(make_row(1, "storm", "slow", true, 30, 8.0, 0.1));
  rows.push_back(make_row(1, "storm", "fast", true, 30, 3.0, 0.3, "c001__fast.ckpt"));
  const auto board = Leaderboard::build(rows);

  ASSERT_EQ(board.standings.size(), 2u);
  EXPECT_EQ(board.standings[0].method, "fast");  // lower mean wait ranks first
  const auto& fast = board.standings[0];
  EXPECT_DOUBLE_EQ(fast.mean_wait_h, 2.0);
  EXPECT_DOUBLE_EQ(fast.worst_wait_h, 3.0);
  EXPECT_DOUBLE_EQ(fast.eventful_wait_h, 3.0);
  EXPECT_DOUBLE_EQ(fast.calm_wait_h, 1.0);
  EXPECT_DOUBLE_EQ(fast.robustness_spread_h, 2.0);
  // Episode-weighted zero fraction: (0.5*10 + 0.3*30) / 40.
  EXPECT_DOUBLE_EQ(fast.zero_fraction, 0.35);
  EXPECT_TRUE(fast.has_checkpoint);
  EXPECT_FALSE(board.standings[1].has_checkpoint);
  EXPECT_EQ(board.best(/*require_checkpoint=*/true), &board.standings[0]);
}

TEST(Leaderboard, CsvEscapesHostileNamesRoundTrip) {
  // Satellite contract: cell/profile/method names containing delimiters
  // must survive to_csv -> util::csv parse.
  const std::string evil_cell = "a100/u1.00,d8/\"flash, crowd\"";
  const std::string evil_method = "MoE+DQN,v2\nnightly";
  std::vector<JobResult> rows;
  rows.push_back(make_row(0, evil_cell, evil_method, true, 5, 1.5, 0.4));
  const auto board = Leaderboard::build(rows);

  const auto table = util::CsvTable::parse(board.to_csv(), /*has_header=*/true);
  ASSERT_EQ(table.row_count(), 1u);
  const int cell_col = table.column("cell");
  const int method_col = table.column("method");
  ASSERT_GE(cell_col, 0);
  ASSERT_GE(method_col, 0);
  EXPECT_EQ(table.row(0)[static_cast<std::size_t>(cell_col)], evil_cell);
  EXPECT_EQ(table.row(0)[static_cast<std::size_t>(method_col)], evil_method);

  const auto standings = util::CsvTable::parse(board.standings_csv(), /*has_header=*/true);
  ASSERT_EQ(standings.row_count(), 1u);
  EXPECT_EQ(standings.row(0)[1], evil_method);
}

// ---------------------------------------------------------- ArtifactStore

TEST(ArtifactStore, ManifestRoundTripIsBitwise) {
  TempDir tmp("manifest");
  const auto plan = tiny_plan("manifest");
  ArtifactStore store(tmp.dir("store"));
  ASSERT_TRUE(store.init_run(plan));
  const auto jobs = expand_jobs(plan);

  // Awkward doubles: non-terminating binary fractions and denormal-ish
  // magnitudes must round-trip bitwise through the %.17g manifest.
  JobResult row = make_row(jobs[0].cell_index, jobs[0].cell.name,
                           core::method_name(jobs[0].method), false, 7, 1.0 / 3.0, 2.0 / 7.0);
  row.seed = jobs[0].cell.seed;
  row.cell_mean_wait_h = 1e-17;
  row.cell_p95_wait_h = 123456.78901234567;
  row.cell_utilization = 0.1 + 0.2;  // famously not 0.3
  ASSERT_TRUE(store.save(plan, jobs[0], row));

  const auto loaded = store.load(plan, jobs[0]);
  ASSERT_TRUE(loaded);
  EXPECT_TRUE(*loaded == row);
  EXPECT_TRUE(loaded->resumed);
  EXPECT_EQ(store.count_complete(plan), 1u);
}

TEST(ArtifactStore, StalePlanArtifactsAreNotReused) {
  TempDir tmp("stale");
  auto plan = tiny_plan("stale");
  ArtifactStore store(tmp.dir("store"));
  ASSERT_TRUE(store.init_run(plan));
  const auto jobs = expand_jobs(plan);
  JobResult row = make_row(jobs[0].cell_index, jobs[0].cell.name,
                           core::method_name(jobs[0].method), false, 7, 1.0, 0.5);
  row.seed = jobs[0].cell.seed;
  ASSERT_TRUE(store.save(plan, jobs[0], row));
  ASSERT_TRUE(store.load(plan, jobs[0]));

  // Any budget change is a different plan hash -> artifacts invalidated
  // (the run directory itself moves).
  auto revised = plan;
  revised.budget.eval_episodes += 1;
  EXPECT_NE(revised.hash(), plan.hash());
  EXPECT_FALSE(store.load(revised, expand_jobs(revised)[0]));
  EXPECT_EQ(store.count_complete(revised), 0u);
}

TEST(ArtifactStore, ManifestPromisingLostCheckpointIsNotResumable) {
  TempDir tmp("lostckpt");
  const auto plan = tiny_plan("lostckpt");
  ArtifactStore store(tmp.dir("store"));
  ASSERT_TRUE(store.init_run(plan));
  const auto jobs = expand_jobs(plan);
  JobResult row = make_row(jobs[1].cell_index, jobs[1].cell.name,
                           core::method_name(jobs[1].method), false, 7, 1.0, 0.5,
                           jobs[1].id() + ".ckpt");
  row.seed = jobs[1].cell.seed;
  ASSERT_TRUE(store.save(plan, jobs[1], row));
  EXPECT_FALSE(store.load(plan, jobs[1]));  // ckpt file was never written

  std::ofstream(store.checkpoint_path(plan, jobs[1])) << "bytes";
  EXPECT_TRUE(store.load(plan, jobs[1]));
}

// ----------------------------------------------------------------- Runner

TEST(LabRunner, SerialRunProducesArtifactsAndCheckpoints) {
  TempDir tmp("serial");
  const auto plan = tiny_plan("serial");
  ArtifactStore store(tmp.dir("store"));
  const auto report = LabRunner::run_serial(plan, store);

  EXPECT_EQ(report.jobs_total, 4u);
  EXPECT_EQ(report.jobs_run, 4u);
  EXPECT_EQ(report.jobs_resumed, 0u);
  ASSERT_EQ(report.leaderboard.rows.size(), 4u);
  for (const auto& row : report.leaderboard.rows) {
    EXPECT_GT(row.episodes, 0u);
    if (row.method == "MoE+DQN") {
      ASSERT_FALSE(row.checkpoint.empty());
      EXPECT_TRUE(fs::exists(fs::path(store.run_dir(plan)) / row.checkpoint));
    } else {
      EXPECT_TRUE(row.checkpoint.empty());
    }
  }
  // One eventful and one calm cell -> a defined robustness spread.
  const auto* best = report.leaderboard.best();
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->cells, 2u);
  EXPECT_EQ(store.count_complete(plan), 4u);
  EXPECT_TRUE(fs::exists(fs::path(store.run_dir(plan)) / "plan.txt"));
}

TEST(LabRunner, ParallelLeaderboardBitwiseIdenticalToSerial) {
  TempDir tmp("par");
  const auto plan = tiny_plan("par");
  ArtifactStore serial_store(tmp.dir("serial"));
  ArtifactStore parallel_store(tmp.dir("parallel"));
  const auto serial = LabRunner::run_serial(plan, serial_store);
  const auto parallel = LabRunner(/*threads=*/3).run(plan, parallel_store);
  EXPECT_EQ(parallel.jobs_run, 4u);
  EXPECT_TRUE(parallel.leaderboard == serial.leaderboard);
}

/// Multi-partition plan with a preemption + correlated-failure profile:
/// the partition axis crosses a single-pool layout with a 3-pool layout,
/// and the failure profile preempts the a100 pool and fires a correlated
/// rack burst. Heuristic-only methods keep it fast; episodes still build
/// partitioned simulators and replay the events (cell_pipeline_config).
ExperimentPlan partitioned_plan(const std::string& name) {
  using scenario::ScenarioEvent;
  using scenario::ScenarioEventKind;
  ExperimentPlan plan;
  plan.name = name;
  plan.methods = {core::Method::kAvg, core::Method::kReactive};
  plan.budget.collector_anchors = 4;
  plan.budget.eval_episodes = 4;
  plan.budget.online_episodes = 2;
  plan.budget.pretrain_epochs = 1;

  auto& base = plan.matrix.base;
  base.cluster = "a100";
  base.months_begin = 0;
  base.months_end = 1;
  base.seed = 11;
  base.job_count_scale = 0.25;
  base.utilization_scale = 1.2;

  ScenarioEvent preempt{ScenarioEventKind::kPreempt, 5 * util::kDay, 6};
  preempt.partition = "a100";
  preempt.requeue_delay = 3600;
  ScenarioEvent correlated{ScenarioEventKind::kCorrelatedDown, 9 * util::kDay, 8};
  correlated.rack_size = 4;
  ScenarioEvent restore{ScenarioEventKind::kNodeRestore, 12 * util::kDay, 8};
  restore.partition = "a100";
  plan.matrix.event_profiles = {{"none", {}}, {"failures", {preempt, correlated, restore}}};
  plan.matrix.partition_layouts = {
      {"3pool", {{"v100", 8}, {"rtx", 6}, {"a100", 6}}},
  };
  return plan;
}

TEST(ExperimentPlan, PartitionLayoutAxisRoundTripsThroughPlanText) {
  const auto plan = partitioned_plan("parts");
  const std::string text = plan.to_text();
  std::string error;
  const auto parsed = parse_plan(text, &error);
  ASSERT_TRUE(parsed) << error;
  EXPECT_EQ(parsed->to_text(), text);
  EXPECT_EQ(parsed->hash(), plan.hash());
  ASSERT_EQ(parsed->matrix.partition_layouts.size(), 1u);
  EXPECT_EQ(parsed->matrix.partition_layouts[0].name, "3pool");
  ASSERT_EQ(parsed->matrix.partition_layouts[0].partitions.size(), 3u);
  EXPECT_EQ(parsed->matrix.partition_layouts[0].partitions[1].name, "rtx");
  EXPECT_EQ(parsed->matrix.partition_layouts[0].partitions[1].node_count, 6);
  ASSERT_EQ(parsed->matrix.event_profiles.size(), 2u);
  const auto& failures = parsed->matrix.event_profiles[1].events;
  ASSERT_EQ(failures.size(), 3u);
  EXPECT_EQ(failures[0].kind, scenario::ScenarioEventKind::kPreempt);
  EXPECT_EQ(failures[0].partition, "a100");
  EXPECT_EQ(failures[0].requeue_delay, 3600);
  EXPECT_EQ(failures[1].kind, scenario::ScenarioEventKind::kCorrelatedDown);
  EXPECT_EQ(failures[1].rack_size, 4);

  // A layout naming a partition the failure profile targets must validate;
  // one that drops the a100 pool must be rejected up front.
  auto bad = plan;
  bad.matrix.partition_layouts = {{"nopool", {{"v100", 10}, {"rtx", 10}}}};
  std::string bad_error;
  EXPECT_FALSE(parse_plan(bad.to_text(), &bad_error));
  EXPECT_NE(bad_error.find("unknown partition"), std::string::npos) << bad_error;
}

TEST(LabRunner, PartitionedPlanParallelEqualsSerialBitwise) {
  // Acceptance: a multi-partition sweep with preemption + correlated-down
  // events runs parallel == serial bitwise through lab::LabRunner.
  TempDir tmp("parts");
  const auto plan = partitioned_plan("parts");
  ArtifactStore serial_store(tmp.dir("serial"));
  ArtifactStore parallel_store(tmp.dir("parallel"));
  const auto serial = LabRunner::run_serial(plan, serial_store);
  const auto parallel = LabRunner(/*threads=*/3).run(plan, parallel_store);
  EXPECT_EQ(serial.jobs_total, 4u);  // 2 profiles x 1 layout x 2 methods
  EXPECT_TRUE(parallel.leaderboard == serial.leaderboard);
}

TEST(LabRunner, KilledRunResumesToBitwiseIdenticalLeaderboard) {
  TempDir tmp("resume");
  const auto plan = tiny_plan("resume");

  ArtifactStore reference_store(tmp.dir("reference"));
  const auto reference = LabRunner::run_serial(plan, reference_store);

  // "Kill" a run mid-way: complete run, then truncate the artifact dir —
  // drop the second cell's manifests and checkpoints, as if the process
  // died before finishing it.
  ArtifactStore store(tmp.dir("killed"));
  (void)LabRunner::run_serial(plan, store);
  const auto jobs = expand_jobs(plan);
  std::size_t dropped = 0;
  for (const auto& job : jobs) {
    if (job.cell_index != 1) continue;
    dropped += fs::remove(store.manifest_path(plan, job));
    fs::remove(store.checkpoint_path(plan, job));
  }
  ASSERT_EQ(dropped, 2u);
  ASSERT_EQ(store.count_complete(plan), 2u);

  const auto resumed = LabRunner(/*threads=*/2).run(plan, store);
  EXPECT_EQ(resumed.jobs_resumed, 2u);
  EXPECT_EQ(resumed.jobs_run, 2u);
  EXPECT_TRUE(resumed.leaderboard == reference.leaderboard);

  // A second resume touches nothing and still reproduces the leaderboard.
  const auto noop = LabRunner(/*threads=*/2).run(plan, store);
  EXPECT_EQ(noop.jobs_run, 0u);
  EXPECT_EQ(noop.jobs_resumed, 4u);
  EXPECT_TRUE(noop.leaderboard == reference.leaderboard);
}

// -------------------------------------------------------------- Promotion

/// Deterministic synthetic cluster snapshot stream (as in serve_test).
sim::StateSample make_sample(std::uint64_t session, std::uint64_t step) {
  util::Rng rng(session * 1000003ull + step * 7919ull + 1);
  sim::StateSample s;
  s.now = static_cast<util::SimTime>(step) * 600;
  s.total_nodes = 20;
  s.free_nodes = static_cast<std::int32_t>(rng.uniform_int(0, 20));
  const auto nq = rng.uniform_int(0, 6);
  for (std::int64_t i = 0; i < nq; ++i) {
    s.queued_sizes.push_back(static_cast<double>(rng.uniform_int(1, 4)));
    s.queued_ages.push_back(rng.uniform(0.0, 86400.0));
    s.queued_limits.push_back(rng.uniform(3600.0, 172800.0));
  }
  return s;
}

TEST(Promotion, BestCheckpointHotReloadsIntoLiveServiceUnderConcurrentSessions) {
  TempDir tmp("promote");
  const auto plan = tiny_plan("promote");
  ArtifactStore store(tmp.dir("store"));
  const auto report = LabRunner(/*threads=*/2).run(plan, store);

  serve::ModelRegistry registry(registry_config(plan));
  const auto first = promote_best(report.leaderboard, plan, store, registry);
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_EQ(first.method, "MoE+DQN");  // the only checkpointable method
  EXPECT_EQ(first.key.cluster, "a100");
  EXPECT_EQ(first.key.method, "dqn");
  EXPECT_EQ(first.key.foundation, "moe");
  ASSERT_NE(registry.lookup(first.key), nullptr);

  // Live service keyed on the promoted model; clients decide while the
  // lab re-promotes (atomic hot reload, no dropped decisions).
  serve::ServiceConfig cfg;
  cfg.history_len = serving_history_len(plan);
  cfg.engine.max_batch = 8;
  serve::ProvisioningService service(registry, first.key, cfg);
  service.start();

  constexpr int kClients = 3;
  constexpr int kDecisionsPerClient = 24;
  std::atomic<int> failures{0};
  std::mutex versions_mutex;
  std::set<std::uint64_t> versions_seen;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const auto id = service.open_session();
      rl::JobPairContext ctx;
      ctx.pred_nodes = 1 + c;
      for (int t = 0; t < kDecisionsPerClient; ++t) {
        service.observe(id, make_sample(static_cast<std::uint64_t>(c), t), ctx);
        try {
          const auto d = service.decide(id);
          std::lock_guard<std::mutex> lock(versions_mutex);
          versions_seen.insert(d.model_version);
        } catch (...) {
          failures.fetch_add(1);
        }
      }
    });
  }

  std::uint64_t last_version = first.version;
  for (int r = 0; r < 8; ++r) {
    const auto again = promote_best(report.leaderboard, plan, store, registry);
    ASSERT_TRUE(again.ok) << again.error;
    EXPECT_EQ(again.key, first.key);
    EXPECT_GT(again.version, last_version);
    last_version = again.version;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (auto& t : clients) t.join();
  service.drain_and_stop();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(versions_seen.size(), 1u);
  ASSERT_NE(registry.lookup(first.key), nullptr);
  EXPECT_EQ(registry.lookup(first.key)->version(), last_version);
  EXPECT_EQ(service.report().decisions,
            static_cast<std::uint64_t>(kClients * kDecisionsPerClient));
}

TEST(Promotion, PartitionedPlanTrainsAndPromotesWiderFrames) {
  // End-to-end acceptance: an RL method trained on a 3-partition cell (its
  // episodes observing per-partition capacity features and replaying the
  // cell's preemption/correlated events) produces a checkpoint with the
  // wider frame, and registry_config sizes serving for it.
  TempDir tmp("partpromo");
  auto plan = partitioned_plan("partpromo");
  plan.methods = {core::Method::kMoeDqn};
  plan.matrix.event_profiles.erase(plan.matrix.event_profiles.begin());  // 1 cell: failures only

  const auto cfg = registry_config(plan);
  EXPECT_EQ(cfg.expected_state_dim, rl::frame_dim(3));  // 40 + 3 partitions + action
  EXPECT_EQ(serving_partition_count(plan), 3u);

  ArtifactStore store(tmp.dir("store"));
  const auto report = LabRunner::run_serial(plan, store);
  ASSERT_EQ(report.jobs_run, 1u);

  serve::ModelRegistry registry(cfg);
  const auto promoted = promote_best(report.leaderboard, plan, store, registry);
  ASSERT_TRUE(promoted.ok) << promoted.error;
  ASSERT_NE(registry.lookup(promoted.key), nullptr);

  // Sessions configured for the plan's partition count can feed the
  // promoted model multi-partition StateSamples end to end.
  serve::ServiceConfig svc;
  svc.history_len = serving_history_len(plan);
  svc.partition_count = serving_partition_count(plan);
  serve::ProvisioningService service(registry, promoted.key, svc);
  service.start();
  const auto session = service.open_session();
  sim::StateSample sample;
  sample.now = 600;
  sample.total_nodes = 20;
  sample.free_nodes = 9;
  sample.partition_total = {8, 6, 6};
  sample.partition_free = {4, 2, 3};
  service.observe(session, sample, rl::JobPairContext{});
  const auto decision = service.decide(session);
  EXPECT_TRUE(decision.action == 0 || decision.action == 1);
  service.drain_and_stop();
}

TEST(Promotion, FailsLoudlyWithoutCheckpoints) {
  TempDir tmp("nockpt");
  auto plan = tiny_plan("nockpt");
  plan.methods = {core::Method::kAvg};  // nothing checkpointable
  ArtifactStore store(tmp.dir("store"));
  const auto report = LabRunner::run_serial(plan, store);
  serve::ModelRegistry registry(registry_config(plan));
  const auto promotion = promote_best(report.leaderboard, plan, store, registry);
  EXPECT_FALSE(promotion.ok);
  EXPECT_NE(promotion.error.find("checkpoint"), std::string::npos);
  EXPECT_EQ(registry.size(), 0u);
}

}  // namespace
}  // namespace mirage::lab

// Tests for the tree-based learners: CART, random forest, GBDT.
#include <gtest/gtest.h>

#include <cmath>

#include "ml/gbdt.hpp"
#include "ml/random_forest.hpp"
#include "util/stats.hpp"

namespace mirage::ml {
namespace {

using util::Rng;

/// y = step function of x0: -1 below 0, +1 above (easy split at 0).
Dataset step_dataset(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Dataset d(2);
  for (std::size_t i = 0; i < n; ++i) {
    const float x0 = static_cast<float>(rng.uniform(-1.0, 1.0));
    const float x1 = static_cast<float>(rng.uniform(-1.0, 1.0));  // noise feature
    const float y = x0 < 0 ? -1.0f : 1.0f;
    d.add_row(std::vector<float>{x0, x1}, y);
  }
  return d;
}

/// y = 2*x0 - 3*x1 + noise.
Dataset linear_dataset(std::size_t n, std::uint64_t seed, double noise = 0.05) {
  Rng rng(seed);
  Dataset d(2);
  for (std::size_t i = 0; i < n; ++i) {
    const float x0 = static_cast<float>(rng.uniform(-1.0, 1.0));
    const float x1 = static_cast<float>(rng.uniform(-1.0, 1.0));
    const float y = 2.0f * x0 - 3.0f * x1 + static_cast<float>(rng.normal(0.0, noise));
    d.add_row(std::vector<float>{x0, x1}, y);
  }
  return d;
}

double rmse(const auto& model, const Dataset& d) {
  double se = 0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    const double e = model.predict({d.row(i), d.num_features()}) - d.target(i);
    se += e * e;
  }
  return std::sqrt(se / static_cast<double>(d.size()));
}

// ---------------------------------------------------------------- Dataset

TEST(DatasetTest, AddAndAccess) {
  Dataset d(3);
  d.add_row(std::vector<float>{1, 2, 3}, 9.0f);
  EXPECT_EQ(d.size(), 1u);
  EXPECT_EQ(d.num_features(), 3u);
  EXPECT_FLOAT_EQ(d.row(0)[2], 3.0f);
  EXPECT_FLOAT_EQ(d.target(0), 9.0f);
  d.mutable_target(0) = 1.0f;
  EXPECT_FLOAT_EQ(d.target(0), 1.0f);
}

// ----------------------------------------------------------- DecisionTree

TEST(DecisionTree, LearnsStepFunction) {
  const auto d = step_dataset(500, 1);
  DecisionTree tree;
  Rng rng(2);
  tree.fit(d, TreeParams{.max_depth = 3, .min_samples_leaf = 5}, rng);
  EXPECT_NEAR(tree.predict(std::vector<float>{-0.5f, 0.0f}), -1.0f, 0.1f);
  EXPECT_NEAR(tree.predict(std::vector<float>{0.5f, 0.0f}), 1.0f, 0.1f);
}

TEST(DecisionTree, DepthZeroIsConstantMean) {
  const auto d = linear_dataset(200, 3);
  DecisionTree tree;
  Rng rng(4);
  tree.fit(d, TreeParams{.max_depth = 0}, rng);
  double mean = 0;
  for (std::size_t i = 0; i < d.size(); ++i) mean += d.target(i);
  mean /= static_cast<double>(d.size());
  EXPECT_NEAR(tree.predict(std::vector<float>{0.9f, -0.9f}), mean, 1e-4);
  EXPECT_EQ(tree.depth(), 1);
}

TEST(DecisionTree, RespectsMaxDepth) {
  const auto d = linear_dataset(500, 5);
  DecisionTree tree;
  Rng rng(6);
  tree.fit(d, TreeParams{.max_depth = 3, .min_samples_leaf = 2}, rng);
  EXPECT_LE(tree.depth(), 4);  // depth counts nodes on the path
}

TEST(DecisionTree, EmptyDatasetPredictsZero) {
  Dataset d(2);
  DecisionTree tree;
  Rng rng(7);
  tree.fit(d, TreeParams{}, rng);
  EXPECT_FLOAT_EQ(tree.predict(std::vector<float>{1.0f, 1.0f}), 0.0f);
}

TEST(DecisionTree, DeeperTreesFitBetter) {
  const auto d = linear_dataset(1000, 8);
  DecisionTree shallow, deep;
  Rng r1(9), r2(9);
  shallow.fit(d, TreeParams{.max_depth = 2, .min_samples_leaf = 5}, r1);
  deep.fit(d, TreeParams{.max_depth = 8, .min_samples_leaf = 5}, r2);
  EXPECT_LT(rmse(deep, d), rmse(shallow, d));
}

TEST(DecisionTree, SampleWeightsSteerTheFit) {
  // Two clusters of targets; weighting one cluster to ~0 should move the
  // root prediction to the other's mean.
  Dataset d(1);
  std::vector<float> w;
  for (int i = 0; i < 50; ++i) {
    d.add_row(std::vector<float>{0.0f}, 10.0f);
    w.push_back(1e-6f);
  }
  for (int i = 0; i < 50; ++i) {
    d.add_row(std::vector<float>{0.0f}, -5.0f);
    w.push_back(1.0f);
  }
  DecisionTree tree;
  Rng rng(10);
  tree.fit(d, TreeParams{.max_depth = 0}, rng, {}, w);
  EXPECT_NEAR(tree.predict(std::vector<float>{0.0f}), -5.0f, 0.01f);
}

// ----------------------------------------------------------- RandomForest

TEST(RandomForest, BeatsSingleTreeOnNoisyData) {
  const auto train = linear_dataset(800, 11, /*noise=*/0.5);
  const auto test = linear_dataset(400, 12, /*noise=*/0.0);
  DecisionTree tree;
  Rng rng(13);
  tree.fit(train, TreeParams{.max_depth = 10, .min_samples_leaf = 2}, rng);
  RandomForest forest;
  ForestParams fp;
  fp.num_trees = 40;
  fp.tree = TreeParams{.max_depth = 10, .min_samples_leaf = 2};
  fp.seed = 14;
  forest.fit(train, fp);
  EXPECT_LT(rmse(forest, test), rmse(tree, test));
}

TEST(RandomForest, TreeCountAndTrainedFlag) {
  RandomForest forest;
  EXPECT_FALSE(forest.trained());
  ForestParams fp;
  fp.num_trees = 7;
  forest.fit(linear_dataset(100, 15), fp);
  EXPECT_TRUE(forest.trained());
  EXPECT_EQ(forest.tree_count(), 7u);
}

TEST(RandomForest, DeterministicForSeed) {
  const auto d = linear_dataset(300, 16);
  ForestParams fp;
  fp.num_trees = 8;
  fp.seed = 99;
  fp.parallel = false;
  RandomForest a, b;
  a.fit(d, fp);
  b.fit(d, fp);
  const std::vector<float> x{0.3f, -0.7f};
  EXPECT_FLOAT_EQ(a.predict(x), b.predict(x));
}

TEST(RandomForest, ParallelMatchesSerial) {
  const auto d = linear_dataset(300, 17);
  ForestParams fp;
  fp.num_trees = 8;
  fp.seed = 42;
  fp.parallel = false;
  RandomForest serial;
  serial.fit(d, fp);
  fp.parallel = true;
  RandomForest parallel;
  parallel.fit(d, fp);
  const std::vector<float> x{-0.2f, 0.4f};
  EXPECT_FLOAT_EQ(serial.predict(x), parallel.predict(x));
}

TEST(RandomForest, EmptyDatasetSafe) {
  RandomForest forest;
  ForestParams fp;
  forest.fit(Dataset(2), fp);
  EXPECT_FLOAT_EQ(forest.predict(std::vector<float>{0.0f, 0.0f}), 0.0f);
}

// ------------------------------------------------------------------- GBDT

TEST(Gbdt, TrainRmseDecreasesMonotonically) {
  const auto d = linear_dataset(600, 18);
  Gbdt model;
  GbdtParams gp;
  gp.num_rounds = 50;
  gp.subsample = 1.0;
  model.fit(d, gp);
  const auto& hist = model.train_rmse_history();
  ASSERT_GE(hist.size(), 10u);
  EXPECT_LT(hist.back(), 0.5 * hist.front());
  for (std::size_t i = 1; i < hist.size(); ++i) {
    EXPECT_LE(hist[i], hist[i - 1] + 1e-9) << "round " << i;
  }
}

TEST(Gbdt, FitsStepFunctionExactly) {
  const auto d = step_dataset(500, 19);
  Gbdt model;
  GbdtParams gp;
  gp.num_rounds = 60;
  gp.learning_rate = 0.3;
  gp.subsample = 1.0;
  model.fit(d, gp);
  EXPECT_NEAR(model.predict(std::vector<float>{-0.5f, 0.0f}), -1.0f, 0.05f);
  EXPECT_NEAR(model.predict(std::vector<float>{0.5f, 0.0f}), 1.0f, 0.05f);
}

TEST(Gbdt, BaseScoreIsTargetMeanWithZeroRounds) {
  Dataset d(1);
  d.add_row(std::vector<float>{0.0f}, 2.0f);
  d.add_row(std::vector<float>{1.0f}, 4.0f);
  Gbdt model;
  GbdtParams gp;
  gp.num_rounds = 0;
  model.fit(d, gp);
  EXPECT_FLOAT_EQ(model.predict(std::vector<float>{0.5f}), 3.0f);
}

TEST(Gbdt, LambdaShrinksLeafWeights) {
  const auto d = linear_dataset(300, 20);
  GbdtParams weak;
  weak.num_rounds = 1;
  weak.learning_rate = 1.0;
  weak.lambda = 1000.0;  // heavy regularization
  weak.subsample = 1.0;
  Gbdt reg;
  reg.fit(d, weak);
  weak.lambda = 0.0;
  Gbdt free;
  free.fit(d, weak);
  // The regularized model must move less from the base score.
  const std::vector<float> x{0.9f, -0.9f};
  const float base = 0.0f;  // targets are ~zero-mean
  EXPECT_LT(std::abs(reg.predict(x) - base), std::abs(free.predict(x) - base) + 1e-3f);
}

TEST(Gbdt, GeneralizesOnHeldOut) {
  const auto train = linear_dataset(800, 21, 0.1);
  const auto test = linear_dataset(300, 22, 0.0);
  Gbdt model;
  GbdtParams gp;
  gp.num_rounds = 150;
  model.fit(train, gp);
  EXPECT_LT(rmse(model, test), 0.5);
}

TEST(Gbdt, EmptyDatasetSafe) {
  Gbdt model;
  model.fit(Dataset(1), GbdtParams{});
  EXPECT_FLOAT_EQ(model.predict(std::vector<float>{1.0f}), 0.0f);
}

}  // namespace
}  // namespace mirage::ml

// Unit tests for src/util: RNG, statistics, CSV, config, thread pool, time.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "util/config.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"
#include "util/time_utils.hpp"

namespace mirage::util {
namespace {

// ------------------------------------------------------------------- Rng

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.5);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.5);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(2, 6);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, UniformIntSingleValue) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, NormalMomentsApproximate) {
  Rng rng(3);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.normal(2.0, 3.0));
  EXPECT_NEAR(s.mean(), 2.0, 0.08);
  EXPECT_NEAR(s.stddev(), 3.0, 0.08);
}

TEST(Rng, LognormalIsExpOfNormal) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(9);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.exponential(0.25));
  EXPECT_NEAR(s.mean(), 4.0, 0.15);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(static_cast<double>(rng.poisson(3.5)));
  EXPECT_NEAR(s.mean(), 3.5, 0.1);
}

TEST(Rng, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(17);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(static_cast<double>(rng.poisson(200.0)));
  EXPECT_NEAR(s.mean(), 200.0, 1.5);
  EXPECT_NEAR(s.stddev(), std::sqrt(200.0), 1.0);
}

TEST(Rng, PoissonZeroMeanIsZero) {
  Rng rng(1);
  EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(23);
  std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 20000; ++i) ++counts[rng.categorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / 20000.0, 0.75, 0.02);
}

TEST(Rng, CategoricalAllZeroWeightsReturnsFirst) {
  Rng rng(1);
  std::vector<double> w = {0.0, 0.0};
  EXPECT_EQ(rng.categorical(w), 0u);
}

TEST(Rng, ZipfFavorsLowRanks) {
  Rng rng(29);
  int low = 0, high = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto v = rng.zipf(100, 1.1);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 100);
    if (v <= 10) ++low;
    if (v > 90) ++high;
  }
  EXPECT_GT(low, high * 5);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(123);
  Rng child = a.split();
  // Child should not replay the parent's stream.
  Rng b(123);
  b.split();
  EXPECT_EQ(child.next_u64(), [&] { Rng c(123); return c.split().next_u64(); }());
}

// ----------------------------------------------------------------- Stats

TEST(RunningStats, MeanAndVarianceMatchDirectComputation) {
  const std::vector<double> xs = {1.0, 2.5, -3.0, 7.0, 0.5};
  RunningStats s;
  for (double x : xs) s.add(x);
  double mean = 0;
  for (double x : xs) mean += x;
  mean /= xs.size();
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= (xs.size() - 1);
  EXPECT_DOUBLE_EQ(s.mean(), mean);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleSampleVarianceZero) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeEqualsCombined) {
  Rng rng(37);
  RunningStats a, b, all;
  for (int i = 0; i < 100; ++i) {
    const double x = rng.normal();
    a.add(x);
    all.add(x);
  }
  for (int i = 0; i < 57; ++i) {
    const double x = rng.normal(3.0, 2.0);
    b.add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(RunningStats, MergeEmptyPreservesMinMax) {
  // Regression: merging in either direction with an empty accumulator must
  // not clobber (or fabricate) min/max.
  RunningStats a, empty;
  a.add(-2.0);
  a.add(5.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.min(), -2.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);

  RunningStats b;
  b.merge(a);  // empty this adopts other's full state
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.min(), -2.0);
  EXPECT_DOUBLE_EQ(b.max(), 5.0);
  EXPECT_DOUBLE_EQ(b.mean(), a.mean());

  RunningStats c, d;
  c.merge(d);  // empty <- empty stays empty (zeros, not garbage)
  EXPECT_EQ(c.count(), 0u);
  EXPECT_EQ(c.min(), 0.0);
  EXPECT_EQ(c.max(), 0.0);
}

TEST(Percentile, KnownValues) {
  const std::vector<double> v = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25.0);  // linear interpolation
}

TEST(Percentile, EmptyReturnsZero) { EXPECT_EQ(percentile({}, 50.0), 0.0); }

TEST(Percentile, SingleValue) {
  const std::vector<double> v = {7.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 7.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 7.0);
}

TEST(Percentile, ClampsOutOfRangeQ) {
  const std::vector<double> v = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, -5), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 150), 2.0);
}

TEST(FiveNumberSummary, OrderedStatistics) {
  const std::vector<double> v = {5, 1, 9, 3, 7};
  const auto s = five_number_summary(v);
  EXPECT_DOUBLE_EQ(s[0], 1.0);
  EXPECT_DOUBLE_EQ(s[2], 5.0);
  EXPECT_DOUBLE_EQ(s[4], 9.0);
  EXPECT_LE(s[1], s[2]);
  EXPECT_LE(s[2], s[3]);
}

TEST(FiveNumberSummary, EmptyAllZero) {
  const auto s = five_number_summary({});
  for (double x : s) EXPECT_EQ(x, 0.0);
}

TEST(GeometricMean, KnownValue) {
  const std::vector<double> v = {1.0, 4.0};
  EXPECT_NEAR(geometric_mean(v), 2.0, 1e-12);
}

TEST(GeometricMean, FloorsNonPositive) {
  const std::vector<double> v = {0.0};
  EXPECT_GT(geometric_mean(v, 1e-3), 0.0);
}

TEST(Mean, Basic) {
  const std::vector<double> v = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.0);
  EXPECT_EQ(mean({}), 0.0);
}

TEST(HistogramTest, BucketsAndOverflow) {
  Histogram h({1.0, 2.0, 3.0});
  h.add(0.5);   // bucket 0
  h.add(1.0);   // bucket 0 (<=)
  h.add(1.5);   // bucket 1
  h.add(99.0);  // overflow
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 0u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.5);
  EXPECT_TRUE(std::isinf(h.upper_bound(3)));
}

// ------------------------------------------------------------------- CSV

TEST(Csv, ParseSimpleLine) {
  const auto f = parse_csv_line("a,b,c");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[2], "c");
}

TEST(Csv, ParseQuotedFieldsWithCommasAndQuotes) {
  const auto f = parse_csv_line(R"("x,y",plain,"he said ""hi""")");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "x,y");
  EXPECT_EQ(f[1], "plain");
  EXPECT_EQ(f[2], "he said \"hi\"");
}

TEST(Csv, EmptyFields) {
  const auto f = parse_csv_line(",,");
  ASSERT_EQ(f.size(), 3u);
  for (const auto& s : f) EXPECT_TRUE(s.empty());
}

TEST(Csv, EscapeRoundTrip) {
  const std::string nasty = "a,\"b\"\nc";
  const auto escaped = csv_escape(nasty);
  const auto parsed = parse_csv_line(escaped);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0], nasty);
}

TEST(Csv, EscapeQuotesCarriageReturn) {
  // A bare CR is stripped by the reader (CRLF tolerance), so the writer
  // must quote it or the field does not round-trip.
  const std::string nasty = "a\rb";
  EXPECT_EQ(parse_csv_line(nasty)[0], "ab");  // the hazard being guarded
  const auto parsed = parse_csv_line(csv_escape(nasty));
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0], nasty);
}

TEST(Csv, TableKeepsQuotedNewlinesInOneRecord) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write_row({"name", "value"});
  w.write_row({"multi\nline,name", "1"});
  w.write_row({"plain", "2"});
  const auto table = CsvTable::parse(out.str(), /*has_header=*/true);
  ASSERT_EQ(table.row_count(), 2u);
  EXPECT_EQ(table.row(0)[0], "multi\nline,name");
  EXPECT_EQ(table.row(1)[0], "plain");
}

TEST(Csv, WriterAndTableRoundTrip) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write_row({"h1", "h2"});
  w.write_row({"1", "hello, world"});
  w.write_row({"2", "plain"});
  const auto table = CsvTable::parse(out.str(), /*has_header=*/true);
  EXPECT_EQ(table.row_count(), 2u);
  EXPECT_EQ(table.column("h2"), 1);
  EXPECT_EQ(table.column("missing"), -1);
  EXPECT_EQ(table.row(0)[1], "hello, world");
}

TEST(Csv, TableToleratesCrlf) {
  const auto table = CsvTable::parse("a,b\r\n1,2\r\n", true);
  ASSERT_EQ(table.row_count(), 1u);
  EXPECT_EQ(table.row(0)[1], "2");
}

// ---------------------------------------------------------------- Config

TEST(ConfigTest, FromArgsParsesKeyValues) {
  const char* argv[] = {"prog", "alpha=1.5", "name=test", "flag=true", "positional"};
  const auto cfg = Config::from_args(5, argv);
  EXPECT_DOUBLE_EQ(cfg.get_double("alpha", 0), 1.5);
  EXPECT_EQ(cfg.get_string("name", ""), "test");
  EXPECT_TRUE(cfg.get_bool("flag", false));
  EXPECT_FALSE(cfg.has("positional"));
}

TEST(ConfigTest, DefaultsWhenMissingOrMalformed) {
  Config cfg;
  cfg.set("bad_int", "12abc");
  EXPECT_EQ(cfg.get_int("missing", 7), 7);
  EXPECT_EQ(cfg.get_int("bad_int", 7), 7);
  EXPECT_EQ(cfg.get_double("missing", 1.25), 1.25);
}

TEST(ConfigTest, FromTextWithComments) {
  const auto cfg = Config::from_text("a=1\n# comment\nb = 2.5 # trailing\n\nc=x\n");
  EXPECT_EQ(cfg.get_int("a", 0), 1);
  EXPECT_DOUBLE_EQ(cfg.get_double("b", 0), 2.5);
  EXPECT_EQ(cfg.get_string("c", ""), "x");
  EXPECT_EQ(cfg.keys().size(), 3u);
}

TEST(ConfigTest, BoolVariants) {
  Config cfg;
  cfg.set("a", "YES");
  cfg.set("b", "off");
  cfg.set("c", "junk");
  EXPECT_TRUE(cfg.get_bool("a", false));
  EXPECT_FALSE(cfg.get_bool("b", true));
  EXPECT_TRUE(cfg.get_bool("c", true));  // falls back to default
}

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmpty) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, SubmitReturnsCompletionFuture) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  auto f = pool.submit([&] { counter = 42; });
  f.get();
  EXPECT_EQ(counter.load(), 42);
}

TEST(ThreadPoolTest, ParallelForPropagatesExceptionAfterWorkersFinish) {
  // Regression: an exception thrown by fn used to escape the caller's
  // body() while worker futures still iterated over the (destroyed)
  // stack locals. The fix joins every participant first, then rethrows.
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  EXPECT_THROW(
      pool.parallel_for(10000,
                        [&](std::size_t i) {
                          calls.fetch_add(1);
                          if (i == 137) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool must stay fully usable afterwards.
  std::atomic<int> ok{0};
  pool.parallel_for(500, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 500);
  EXPECT_GT(calls.load(), 0);
}

TEST(ThreadPoolTest, ParallelForExceptionOnSerialPath) {
  ThreadPool pool(1);  // single worker takes the inline fast path
  EXPECT_THROW(pool.parallel_for(8, [](std::size_t i) {
    if (i == 3) throw std::logic_error("serial");
  }), std::logic_error);
}

TEST(ThreadPoolTest, ParallelSum) {
  ThreadPool pool(8);
  std::atomic<long long> sum{0};
  pool.parallel_for(10000, [&](std::size_t i) { sum += static_cast<long long>(i); });
  EXPECT_EQ(sum.load(), 10000LL * 9999 / 2);
}

// ------------------------------------------------------------------ Time

TEST(TimeUtils, FormatDuration) {
  EXPECT_EQ(format_duration(0), "00:00:00");
  EXPECT_EQ(format_duration(3661), "01:01:01");
  EXPECT_EQ(format_duration(2 * kDay + 3 * kHour), "2d 03:00:00");
  EXPECT_EQ(format_duration(-kHour), "-01:00:00");
}

TEST(TimeUtils, HourConversions) {
  EXPECT_DOUBLE_EQ(to_hours(kHour), 1.0);
  EXPECT_EQ(from_hours(2.0), 2 * kHour);
  EXPECT_DOUBLE_EQ(to_hours(from_hours(13.5)), 13.5);
}

}  // namespace
}  // namespace mirage::util

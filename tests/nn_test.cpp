// Tests for the NN substrate: tensor ops, layers (with numerical gradient
// checks), attention, foundations, dual-head model, optimizers, losses and
// serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "nn/attention.hpp"
#include "nn/parallel.hpp"
#include "nn/dual_head.hpp"
#include "nn/foundation.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/serialize.hpp"

namespace mirage::nn {
namespace {

using util::Rng;

// ---------------------------------------------------------------- Tensor

TEST(TensorTest, ConstructionAndAccess) {
  Tensor t(2, 3, 1.5f);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.size(), 6u);
  EXPECT_FLOAT_EQ(t.at(1, 2), 1.5f);
  t.at(0, 1) = -2.0f;
  EXPECT_FLOAT_EQ(t.row(0)[1], -2.0f);
}

TEST(TensorTest, ElementwiseOps) {
  Tensor a(1, 3);
  Tensor b(1, 3);
  for (std::size_t i = 0; i < 3; ++i) {
    a.at(0, i) = static_cast<float>(i + 1);
    b.at(0, i) = 2.0f;
  }
  a.add(b);
  EXPECT_FLOAT_EQ(a.at(0, 0), 3.0f);
  a.add_scaled(b, 0.5f);
  EXPECT_FLOAT_EQ(a.at(0, 0), 4.0f);
  a.mul(b);
  EXPECT_FLOAT_EQ(a.at(0, 0), 8.0f);
  a.scale(0.25f);
  EXPECT_FLOAT_EQ(a.at(0, 0), 2.0f);
}

TEST(TensorTest, SquaredNorm) {
  Tensor t(1, 2);
  t.at(0, 0) = 3.0f;
  t.at(0, 1) = 4.0f;
  EXPECT_FLOAT_EQ(t.squared_norm(), 25.0f);
}

TEST(TensorTest, MatmulKnownValues) {
  Tensor a(2, 3), b(3, 2);
  // a = [[1,2,3],[4,5,6]], b = [[7,8],[9,10],[11,12]]
  float av[] = {1, 2, 3, 4, 5, 6}, bv[] = {7, 8, 9, 10, 11, 12};
  std::copy(av, av + 6, a.data());
  std::copy(bv, bv + 6, b.data());
  Tensor c;
  matmul(a, b, c);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(TensorTest, MatmulVariantsAgree) {
  Rng rng(1);
  Tensor a(4, 5), b(5, 3);
  for (float& v : a.flat()) v = static_cast<float>(rng.normal());
  for (float& v : b.flat()) v = static_cast<float>(rng.normal());
  Tensor ref;
  matmul(a, b, ref);

  // matmul_nt: a * (b^T)^T — build bt = b^T and check.
  Tensor bt(3, 5);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 3; ++j) bt.at(j, i) = b.at(i, j);
  Tensor out_nt;
  matmul_nt(a, bt, out_nt);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(out_nt.flat()[i], ref.flat()[i], 1e-5f);
  }

  // matmul_tn: (a^T)^T * b — build at = a^T and check.
  Tensor at(5, 4);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 5; ++j) at.at(j, i) = a.at(i, j);
  Tensor out_tn;
  matmul_tn(at, b, out_tn);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(out_tn.flat()[i], ref.flat()[i], 1e-5f);
  }
}

TEST(TensorTest, MatmulAccumulate) {
  Tensor a(1, 1, 2.0f), b(1, 1, 3.0f), out(1, 1, 10.0f);
  matmul(a, b, out, /*accumulate=*/true);
  EXPECT_FLOAT_EQ(out.at(0, 0), 16.0f);
}

TEST(TensorTest, SoftmaxRowsSumToOneAndStable) {
  Tensor t(2, 3);
  t.at(0, 0) = 1000.0f;  // overflow bait
  t.at(0, 1) = 1000.0f;
  t.at(0, 2) = 999.0f;
  t.at(1, 0) = -5.0f;
  softmax_rows(t);
  for (std::size_t r = 0; r < 2; ++r) {
    float sum = 0;
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_TRUE(std::isfinite(t.at(r, c)));
      sum += t.at(r, c);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
  EXPECT_GT(t.at(0, 0), t.at(0, 2));
}

TEST(TensorTest, AddBiasRows) {
  Tensor x(2, 2, 1.0f), b(1, 2);
  b.at(0, 0) = 10.0f;
  b.at(0, 1) = 20.0f;
  add_bias_rows(x, b);
  EXPECT_FLOAT_EQ(x.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(x.at(1, 1), 21.0f);
}

// ---------------------------------------------------------- ParallelGemm
//
// The parallel GEMM's contract is bitwise: for every thread count the
// output must be byte-identical to the single-threaded run (fixed output
// tile grid, ascending-k accumulation — see nn/parallel.hpp). These
// suites compare raw bytes with memcmp, not EXPECT_NEAR.

/// ~10% exact zeros so the kernels' a==0 skip paths are exercised.
Tensor random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Tensor t(rows, cols);
  for (float& v : t.flat()) {
    v = rng.uniform() < 0.1 ? 0.0f : static_cast<float>(rng.normal());
  }
  return t;
}

void expect_bitwise_equal(const Tensor& got, const Tensor& want, const char* what) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  EXPECT_EQ(std::memcmp(got.data(), want.data(), want.size() * sizeof(float)), 0) << what;
}

/// Naive jik reference — a different loop order entirely, so agreement is
/// approximate (EXPECT_NEAR), unlike the bitwise T-invariance checks.
Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  Tensor out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < a.cols(); ++p) acc += double(a.at(i, p)) * double(b.at(p, j));
      out.at(i, j) = static_cast<float>(acc);
    }
  }
  return out;
}

TEST(ParallelGemm, BitwiseIdenticalAcrossThreadCounts) {
  // Ragged shapes chosen above the serial cutoff (m*k*n >= 64^3) so the
  // parallel path actually engages; they split tiles unevenly in both
  // dimensions (m=5 exercises a single ragged row-tile, n=401 a ragged
  // column split).
  const struct { std::size_t m, k, n; } shapes[] = {
      {67, 129, 65}, {128, 128, 128}, {30, 200, 77}, {5, 300, 401}};
  Rng rng(7);
  for (const auto& s : shapes) {
    const Tensor a = random_matrix(s.m, s.k, rng);
    const Tensor b = random_matrix(s.k, s.n, rng);
    const Tensor at = random_matrix(s.k, s.m, rng);  // matmul_tn input
    const Tensor bt = random_matrix(s.n, s.k, rng);  // matmul_nt input

    Tensor ref_nn, ref_tn, ref_nt;
    {
      ScopedNumThreads serial(1);
      matmul(a, b, ref_nn);
      matmul_tn(at, b, ref_tn);
      matmul_nt(a, bt, ref_nt);
    }
    for (const std::size_t threads : {2, 3, 4, 8}) {
      ScopedNumThreads scope(threads);
      Tensor out;
      matmul(a, b, out);
      expect_bitwise_equal(out, ref_nn, "matmul");
      matmul_tn(at, b, out);
      expect_bitwise_equal(out, ref_tn, "matmul_tn");
      matmul_nt(a, bt, out);
      expect_bitwise_equal(out, ref_nt, "matmul_nt");
    }
    // And the parallel result is the RIGHT answer, not just a stable one.
    const Tensor naive = naive_matmul(a, b);
    for (std::size_t i = 0; i < naive.size(); ++i) {
      EXPECT_NEAR(ref_nn.flat()[i], naive.flat()[i], 2e-3f);
    }
  }
}

TEST(ParallelGemm, AccumulateIsBitwiseIdenticalAcrossThreadCounts) {
  Rng rng(11);
  const Tensor a = random_matrix(70, 130, rng);
  const Tensor b = random_matrix(130, 90, rng);
  const Tensor base = random_matrix(70, 90, rng);

  Tensor ref = base;
  {
    ScopedNumThreads serial(1);
    matmul(a, b, ref, /*accumulate=*/true);
  }
  for (const std::size_t threads : {2, 4, 8}) {
    ScopedNumThreads scope(threads);
    Tensor out = base;
    matmul(a, b, out, /*accumulate=*/true);
    expect_bitwise_equal(out, ref, "matmul accumulate");
  }
}

TEST(ParallelGemm, ThreadCountKnobResolution) {
  set_num_threads(3);
  EXPECT_EQ(num_threads(), 3u);
  {
    ScopedNumThreads outer(2);
    EXPECT_EQ(num_threads(), 2u);
    {
      ScopedNumThreads inner(5);
      EXPECT_EQ(num_threads(), 5u);
    }
    EXPECT_EQ(num_threads(), 2u);  // nesting restores the outer override
  }
  EXPECT_EQ(num_threads(), 3u);
  {
    ScopedNumThreads inherit(0);  // 0 = defer to the process default
    EXPECT_EQ(num_threads(), 3u);
  }
  set_num_threads(0);  // restore: 0 = hardware_concurrency
  EXPECT_GE(num_threads(), 1u);
}

// -------------------------------------------------------- Gradient checks

/// Numerical-vs-analytic gradient check of a module under an MSE loss.
/// Returns the max relative error over sampled parameters and inputs.
double gradient_check(Module& m, std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  Tensor x(rows, cols);
  for (float& v : x.flat()) v = static_cast<float>(rng.normal());
  Tensor y0 = m.forward(x, true);
  Tensor target(y0.rows(), y0.cols());
  for (float& v : target.flat()) v = static_cast<float>(rng.normal());

  std::vector<Parameter*> params;
  m.collect_params(params);
  zero_grads(params);
  auto [l0, g0] = mse_loss(m.forward(x, true), target);
  (void)l0;
  Tensor dx = m.backward(g0);

  auto eval = [&] { return static_cast<double>(mse_loss(m.forward(x, true), target).first); };
  const float eps = 1e-2f;
  double max_rel = 0.0;
  Rng pick(seed ^ 0x1234);
  for (auto* p : params) {
    for (int rep = 0; rep < 4; ++rep) {
      const auto idx = static_cast<std::size_t>(
          pick.uniform_int(0, static_cast<std::int64_t>(p->value.size()) - 1));
      const float orig = p->value.flat()[idx];
      p->value.flat()[idx] = orig + eps;
      const double lp = eval();
      p->value.flat()[idx] = orig - eps;
      const double lm = eval();
      p->value.flat()[idx] = orig;
      const double num = (lp - lm) / (2.0 * eps);
      const double ana = p->grad.flat()[idx];
      if (std::abs(num) > 1e-4 || std::abs(ana) > 1e-4) {
        max_rel = std::max(max_rel, std::abs(num - ana) / std::max(1e-3, std::abs(num) + std::abs(ana)));
      }
    }
  }
  for (int rep = 0; rep < 8; ++rep) {
    const auto idx =
        static_cast<std::size_t>(pick.uniform_int(0, static_cast<std::int64_t>(x.size()) - 1));
    const float orig = x.flat()[idx];
    x.flat()[idx] = orig + eps;
    const double lp = eval();
    x.flat()[idx] = orig - eps;
    const double lm = eval();
    x.flat()[idx] = orig;
    const double num = (lp - lm) / (2.0 * eps);
    const double ana = dx.flat()[idx];
    if (std::abs(num) > 1e-4 || std::abs(ana) > 1e-4) {
      max_rel = std::max(max_rel, std::abs(num - ana) / std::max(1e-3, std::abs(num) + std::abs(ana)));
    }
  }
  return max_rel;
}

constexpr double kGradTol = 0.03;  // float32 composite-model tolerance

TEST(GradCheck, Linear) {
  Rng rng(1);
  Linear l(7, 5, rng);
  EXPECT_LT(gradient_check(l, 4, 7, 11), kGradTol);
}

TEST(GradCheck, ReLU) {
  ReLU r;
  EXPECT_LT(gradient_check(r, 4, 7, 12), kGradTol);
}

TEST(GradCheck, GELU) {
  GELU g;
  EXPECT_LT(gradient_check(g, 4, 7, 13), kGradTol);
}

TEST(GradCheck, Tanh) {
  Tanh t;
  EXPECT_LT(gradient_check(t, 4, 7, 14), kGradTol);
}

TEST(GradCheck, LayerNorm) {
  LayerNorm ln(7);
  EXPECT_LT(gradient_check(ln, 4, 7, 15), kGradTol);
}

TEST(GradCheck, MultiHeadSelfAttention) {
  Rng rng(2);
  MultiHeadSelfAttention attn(5, 8, 2, rng);
  EXPECT_LT(gradient_check(attn, 10, 8, 16), kGradTol);  // batch of 2 sequences
}

TEST(GradCheck, TransformerEncoderLayer) {
  Rng rng(3);
  TransformerEncoderLayer enc(5, 8, 2, 16, 0.0f, rng, "enc");
  EXPECT_LT(gradient_check(enc, 10, 8, 17), kGradTol);
}

class FoundationGradTest : public ::testing::TestWithParam<FoundationType> {};

TEST_P(FoundationGradTest, EndToEndGradients) {
  FoundationConfig cfg;
  cfg.history_len = 5;
  cfg.state_dim = 9;
  cfg.d_model = 8;
  cfg.num_heads = 2;
  cfg.num_layers = 1;
  cfg.ffn_hidden = 16;
  cfg.moe_experts = 3;
  auto f = make_foundation(GetParam(), cfg, 21);
  EXPECT_LT(gradient_check(*f, 2, cfg.input_dim(), 18), kGradTol);
}

INSTANTIATE_TEST_SUITE_P(Types, FoundationGradTest,
                         ::testing::Values(FoundationType::kTransformer, FoundationType::kMoE));

// ----------------------------------------------------------------- Layers

TEST(Layers, LinearShapes) {
  Rng rng(1);
  Linear l(3, 4, rng);
  Tensor x(5, 3, 1.0f);
  const Tensor y = l.forward(x, false);
  EXPECT_EQ(y.rows(), 5u);
  EXPECT_EQ(y.cols(), 4u);
}

TEST(Layers, ReLUZeroesNegatives) {
  ReLU r;
  Tensor x(1, 3);
  x.at(0, 0) = -1.0f;
  x.at(0, 1) = 0.0f;
  x.at(0, 2) = 2.0f;
  const Tensor y = r.forward(x, false);
  EXPECT_FLOAT_EQ(y.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(y.at(0, 2), 2.0f);
}

TEST(Layers, GeluKnownValues) {
  GELU g;
  Tensor x(1, 2);
  x.at(0, 0) = 0.0f;
  x.at(0, 1) = 100.0f;
  const Tensor y = g.forward(x, false);
  EXPECT_FLOAT_EQ(y.at(0, 0), 0.0f);
  EXPECT_NEAR(y.at(0, 1), 100.0f, 1e-3f);  // ~identity for large x
}

TEST(Layers, LayerNormNormalizesRows) {
  LayerNorm ln(4);
  Tensor x(1, 4);
  for (std::size_t i = 0; i < 4; ++i) x.at(0, i) = static_cast<float>(i * 10);
  const Tensor y = ln.forward(x, false);
  float mean = 0, var = 0;
  for (std::size_t i = 0; i < 4; ++i) mean += y.at(0, i);
  mean /= 4;
  for (std::size_t i = 0; i < 4; ++i) var += (y.at(0, i) - mean) * (y.at(0, i) - mean);
  EXPECT_NEAR(mean, 0.0f, 1e-5f);
  EXPECT_NEAR(var / 4, 1.0f, 1e-3f);
}

TEST(Layers, DropoutEvalIsIdentityTrainScales) {
  Dropout d(0.5f, Rng(7));
  Tensor x(10, 10, 1.0f);
  const Tensor eval_out = d.forward(x, false);
  for (float v : eval_out.flat()) EXPECT_FLOAT_EQ(v, 1.0f);
  const Tensor train_out = d.forward(x, true);
  int zeros = 0;
  for (float v : train_out.flat()) {
    EXPECT_TRUE(v == 0.0f || std::abs(v - 2.0f) < 1e-6f);  // inverted scaling
    zeros += (v == 0.0f);
  }
  EXPECT_GT(zeros, 20);
  EXPECT_LT(zeros, 80);
}

TEST(Layers, SequentialComposes) {
  Rng rng(5);
  Sequential seq;
  seq.add(std::make_unique<Linear>(3, 8, rng));
  seq.add(std::make_unique<ReLU>());
  seq.add(std::make_unique<Linear>(8, 2, rng));
  Tensor x(4, 3, 0.5f);
  const Tensor y = seq.forward(x, false);
  EXPECT_EQ(y.cols(), 2u);
  std::vector<Parameter*> params;
  seq.collect_params(params);
  EXPECT_EQ(params.size(), 4u);  // 2 linears x (w, b)
}

// -------------------------------------------------------------- Attention

TEST(Attention, OutputShapeAndBatchIndependence) {
  Rng rng(9);
  MultiHeadSelfAttention attn(4, 8, 2, rng);
  Tensor x(8, 8);  // batch of 2 sequences
  for (float& v : x.flat()) v = static_cast<float>(rng.normal());
  const Tensor y = attn.forward(x, false);
  EXPECT_EQ(y.rows(), 8u);
  EXPECT_EQ(y.cols(), 8u);

  // Items must not leak across the batch: recompute item 0 alone.
  Tensor x0(4, 8);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 8; ++c) x0.at(r, c) = x.at(r, c);
  Rng rng2(9);
  MultiHeadSelfAttention attn2(4, 8, 2, rng2);
  const Tensor y0 = attn2.forward(x0, false);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 8; ++c) {
      EXPECT_NEAR(y0.at(r, c), y.at(r, c), 1e-5f);
    }
  }
}

// ------------------------------------------------------------- Foundation

TEST(Foundation, PooledOutputShape) {
  FoundationConfig cfg;
  cfg.history_len = 6;
  cfg.state_dim = 11;
  cfg.d_model = 8;
  cfg.num_heads = 2;
  cfg.num_layers = 2;
  cfg.ffn_hidden = 16;
  TransformerFoundation f(cfg, 1);
  Tensor x(3, cfg.input_dim(), 0.1f);
  const Tensor y = f.forward(x, false);
  EXPECT_EQ(y.rows(), 3u);
  EXPECT_EQ(y.cols(), cfg.d_model);
}

TEST(Foundation, CloneProducesIdenticalOutputs) {
  FoundationConfig cfg;
  cfg.history_len = 4;
  cfg.state_dim = 9;
  cfg.d_model = 8;
  cfg.num_heads = 2;
  cfg.num_layers = 1;
  cfg.ffn_hidden = 16;
  TransformerFoundation f(cfg, 33);
  auto clone = f.clone();
  Rng rng(4);
  Tensor x(2, cfg.input_dim());
  for (float& v : x.flat()) v = static_cast<float>(rng.normal());
  const Tensor a = f.forward(x, false);
  const Tensor b = clone->forward(x, false);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a.flat()[i], b.flat()[i]);
}

TEST(Foundation, MoEDenseIsConvexCombinationOfExperts) {
  // With a single expert, the MoE must equal that expert's output exactly
  // (gate softmax over one logit is always 1).
  FoundationConfig cfg;
  cfg.history_len = 4;
  cfg.state_dim = 9;
  cfg.d_model = 8;
  cfg.num_heads = 2;
  cfg.num_layers = 1;
  cfg.ffn_hidden = 16;
  cfg.moe_experts = 1;
  MoEFoundation moe(cfg, 77);
  TransformerFoundation expert(cfg, 77 + 0x1000, "moe.expert0");
  Rng rng(5);
  Tensor x(2, cfg.input_dim());
  for (float& v : x.flat()) v = static_cast<float>(rng.normal());
  const Tensor a = moe.forward(x, false);
  const Tensor b = expert.forward(x, false);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a.flat()[i], b.flat()[i], 1e-5f);
}

TEST(Foundation, MoETop1MatchesDenseWithOneExpert) {
  FoundationConfig cfg;
  cfg.history_len = 4;
  cfg.state_dim = 9;
  cfg.d_model = 8;
  cfg.num_heads = 2;
  cfg.num_layers = 1;
  cfg.ffn_hidden = 16;
  cfg.moe_experts = 3;
  cfg.moe_top1 = true;
  MoEFoundation moe(cfg, 88);
  Rng rng(6);
  Tensor x(2, cfg.input_dim());
  for (float& v : x.flat()) v = static_cast<float>(rng.normal());
  const Tensor y = moe.forward(x, false);
  EXPECT_EQ(y.rows(), 2u);
  for (float v : y.flat()) EXPECT_TRUE(std::isfinite(v));
}

TEST(Foundation, ParameterCountScalesWithExperts) {
  FoundationConfig cfg;
  cfg.history_len = 4;
  cfg.state_dim = 9;
  cfg.d_model = 8;
  cfg.num_heads = 2;
  cfg.num_layers = 1;
  cfg.ffn_hidden = 16;
  cfg.moe_experts = 2;
  MoEFoundation two(cfg, 1);
  cfg.moe_experts = 4;
  MoEFoundation four(cfg, 1);
  std::vector<Parameter*> p2, p4;
  two.collect_params(p2);
  four.collect_params(p4);
  EXPECT_GT(param_count(p4), 1.8 * param_count(p2));
}

// --------------------------------------------------------------- DualHead

TEST(DualHead, QAndPolicyShapes) {
  FoundationConfig cfg;
  cfg.history_len = 4;
  cfg.state_dim = 9;
  cfg.d_model = 8;
  cfg.num_heads = 2;
  cfg.num_layers = 1;
  cfg.ffn_hidden = 16;
  DualHeadModel m(FoundationType::kTransformer, cfg, 3);
  Tensor x(3, cfg.input_dim(), 0.1f);
  const Tensor q = m.forward_q(x, false);
  EXPECT_EQ(q.rows(), 3u);
  EXPECT_EQ(q.cols(), 1u);
  const Tensor p = m.forward_policy(x, false);
  EXPECT_EQ(p.cols(), 2u);
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_NEAR(p.at(r, 0) + p.at(r, 1), 1.0f, 1e-5f);
  }
}

TEST(DualHead, CopyParamsMakesModelsAgree) {
  FoundationConfig cfg;
  cfg.history_len = 4;
  cfg.state_dim = 9;
  cfg.d_model = 8;
  cfg.num_heads = 2;
  cfg.num_layers = 1;
  cfg.ffn_hidden = 16;
  DualHeadModel a(FoundationType::kTransformer, cfg, 3);
  DualHeadModel b(FoundationType::kTransformer, cfg, 999);
  Tensor x(2, cfg.input_dim(), 0.3f);
  b.copy_params_from(a);
  const Tensor qa = a.forward_q(x, false);
  const Tensor qb = b.forward_q(x, false);
  for (std::size_t i = 0; i < qa.size(); ++i) EXPECT_FLOAT_EQ(qa.flat()[i], qb.flat()[i]);
}

// -------------------------------------------------------------- Optimizer

TEST(Optimizer, SgdConvergesOnQuadratic) {
  // Minimize (w - 3)^2 directly through the Parameter interface.
  Parameter w("w", 1, 1);
  w.value.at(0, 0) = 0.0f;
  SGD opt({&w}, 0.1f);
  for (int i = 0; i < 200; ++i) {
    opt.zero_grad();
    w.grad.at(0, 0) = 2.0f * (w.value.at(0, 0) - 3.0f);
    opt.step();
  }
  EXPECT_NEAR(w.value.at(0, 0), 3.0f, 1e-3f);
}

TEST(Optimizer, AdamConvergesOnQuadratic) {
  Parameter w("w", 1, 1);
  w.value.at(0, 0) = -5.0f;
  Adam opt({&w}, 0.1f);
  for (int i = 0; i < 500; ++i) {
    opt.zero_grad();
    w.grad.at(0, 0) = 2.0f * (w.value.at(0, 0) - 3.0f);
    opt.step();
  }
  EXPECT_NEAR(w.value.at(0, 0), 3.0f, 1e-2f);
}

TEST(Optimizer, AdamFitsLinearRegression) {
  Rng rng(17);
  Linear model(2, 1, rng);
  std::vector<Parameter*> params;
  model.collect_params(params);
  Adam opt(params, 0.05f);
  // y = 2*x0 - x1 + 0.5
  for (int step = 0; step < 400; ++step) {
    Tensor x(16, 2), t(16, 1);
    for (std::size_t r = 0; r < 16; ++r) {
      x.at(r, 0) = static_cast<float>(rng.normal());
      x.at(r, 1) = static_cast<float>(rng.normal());
      t.at(r, 0) = 2.0f * x.at(r, 0) - x.at(r, 1) + 0.5f;
    }
    opt.zero_grad();
    auto [loss, grad] = mse_loss(model.forward(x, true), t);
    (void)loss;
    model.backward(grad);
    opt.step();
  }
  EXPECT_NEAR(model.weight().value.at(0, 0), 2.0f, 0.05f);
  EXPECT_NEAR(model.weight().value.at(0, 1), -1.0f, 0.05f);
  EXPECT_NEAR(model.bias().value.at(0, 0), 0.5f, 0.05f);
}

TEST(Optimizer, GradClipScalesDown) {
  Parameter w("w", 1, 2);
  w.grad.at(0, 0) = 3.0f;
  w.grad.at(0, 1) = 4.0f;  // norm 5
  const float norm = clip_grad_norm({&w}, 1.0f);
  EXPECT_FLOAT_EQ(norm, 5.0f);
  EXPECT_NEAR(std::sqrt(w.grad.squared_norm()), 1.0f, 1e-5f);
  // Below the threshold: untouched.
  w.grad.at(0, 0) = 0.1f;
  w.grad.at(0, 1) = 0.0f;
  clip_grad_norm({&w}, 1.0f);
  EXPECT_FLOAT_EQ(w.grad.at(0, 0), 0.1f);
}

// ------------------------------------------------------------------ Loss

TEST(Loss, MseKnownValue) {
  Tensor pred(1, 2), target(1, 2);
  pred.at(0, 0) = 1.0f;
  pred.at(0, 1) = 3.0f;
  target.at(0, 0) = 0.0f;
  target.at(0, 1) = 0.0f;
  auto [loss, grad] = mse_loss(pred, target);
  EXPECT_FLOAT_EQ(loss, 5.0f);  // (1 + 9) / 2
  EXPECT_FLOAT_EQ(grad.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(grad.at(0, 1), 3.0f);
}

TEST(Loss, HuberQuadraticInsideLinearOutside) {
  Tensor pred(1, 2), target(1, 2, 0.0f);
  pred.at(0, 0) = 0.5f;  // inside delta=1
  pred.at(0, 1) = 3.0f;  // outside
  auto [loss, grad] = huber_loss(pred, target, 1.0f);
  EXPECT_NEAR(loss, (0.5 * 0.25 + (3.0 - 0.5)) / 2.0, 1e-6);
  EXPECT_FLOAT_EQ(grad.at(0, 0), 0.25f);  // d/2 elements
  EXPECT_FLOAT_EQ(grad.at(0, 1), 0.5f);   // clipped at delta/2
}

TEST(Loss, CrossEntropyGradientIsProbMinusOnehot) {
  Tensor probs(1, 2);
  probs.at(0, 0) = 0.3f;
  probs.at(0, 1) = 0.7f;
  auto [loss, grad] = cross_entropy_from_probs(probs, {1});
  EXPECT_NEAR(loss, -std::log(0.7f), 1e-5f);
  EXPECT_NEAR(grad.at(0, 0), 0.3f, 1e-6f);
  EXPECT_NEAR(grad.at(0, 1), -0.3f, 1e-6f);
}

TEST(Loss, PolicyGradientWeightsByAdvantage) {
  Tensor probs(2, 2);
  probs.at(0, 0) = 0.5f;
  probs.at(0, 1) = 0.5f;
  probs.at(1, 0) = 0.5f;
  probs.at(1, 1) = 0.5f;
  auto [loss, grad] = policy_gradient_loss(probs, {0, 0}, {1.0f, -1.0f});
  (void)loss;
  // Opposite advantages on identical rows -> opposite gradients.
  EXPECT_NEAR(grad.at(0, 0), -grad.at(1, 0), 1e-6f);
}

// ---------------------------------------------------------- Serialization

TEST(Serialize, RoundTripRestoresValues) {
  FoundationConfig cfg;
  cfg.history_len = 4;
  cfg.state_dim = 9;
  cfg.d_model = 8;
  cfg.num_heads = 2;
  cfg.num_layers = 1;
  cfg.ffn_hidden = 16;
  DualHeadModel a(FoundationType::kTransformer, cfg, 3);
  DualHeadModel b(FoundationType::kTransformer, cfg, 42);
  const auto bytes = serialize_params(a.parameters());
  ASSERT_TRUE(deserialize_params(bytes, b.parameters()));
  Tensor x(1, cfg.input_dim(), 0.2f);
  EXPECT_FLOAT_EQ(a.forward_q(x, false).at(0, 0), b.forward_q(x, false).at(0, 0));
}

TEST(Serialize, RejectsArchitectureMismatch) {
  FoundationConfig cfg;
  cfg.history_len = 4;
  cfg.state_dim = 9;
  cfg.d_model = 8;
  cfg.num_heads = 2;
  cfg.num_layers = 1;
  cfg.ffn_hidden = 16;
  DualHeadModel a(FoundationType::kTransformer, cfg, 3);
  cfg.d_model = 16;
  DualHeadModel b(FoundationType::kTransformer, cfg, 3);
  const auto bytes = serialize_params(a.parameters());
  EXPECT_FALSE(deserialize_params(bytes, b.parameters()));
}

TEST(Serialize, RejectsCorruptHeader) {
  std::vector<char> junk = {'X', 'X', 'X', 'X', 0, 0};
  Parameter p("p", 1, 1);
  EXPECT_FALSE(deserialize_params(junk, {&p}));
}

}  // namespace
}  // namespace mirage::nn

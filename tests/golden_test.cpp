// Golden-trace regression battery: committed hashes of the synthetic
// workload generator's output and of a short fast-simulator replay for
// every cluster preset. A refactor that silently changes workload
// statistics or scheduling behavior flips these hashes and fails CI.
//
// The hashes cover the integer fields only (ids, times, node counts) —
// the values the rest of the system consumes. They are stable across
// rebuilds on one platform/libm; when a *deliberate* behavior change
// lands, update kGolden from the failure output (the "Which is:" value).
#include <gtest/gtest.h>

#include <cstdint>

#include "sim/simulator.hpp"
#include "trace/cluster_presets.hpp"
#include "trace/generator.hpp"
#include "util/rng.hpp"

namespace mirage {
namespace {

using trace::Trace;
using util::fnv1a64;
using util::kFnv1a64Basis;

/// Hash every integer field of the generated workload.
std::uint64_t workload_hash(const Trace& t) {
  std::uint64_t h = kFnv1a64Basis;
  for (const auto& j : t) {
    h = fnv1a64(h, static_cast<std::uint64_t>(j.job_id));
    h = fnv1a64(h, static_cast<std::uint64_t>(j.user_id));
    h = fnv1a64(h, static_cast<std::uint64_t>(j.submit_time));
    h = fnv1a64(h, static_cast<std::uint64_t>(j.num_nodes));
    h = fnv1a64(h, static_cast<std::uint64_t>(j.actual_runtime));
    h = fnv1a64(h, static_cast<std::uint64_t>(j.time_limit));
  }
  return h;
}

/// Hash the schedule a default-config replay assigns.
std::uint64_t schedule_hash(const Trace& t) {
  std::uint64_t h = kFnv1a64Basis;
  for (const auto& j : t) {
    h = fnv1a64(h, static_cast<std::uint64_t>(j.start_time));
    h = fnv1a64(h, static_cast<std::uint64_t>(j.end_time));
  }
  return h;
}

struct Golden {
  const char* cluster;
  std::uint64_t trace_hash;     ///< generator output, months [0, 2)
  std::uint64_t replay_hash;    ///< fast-sim replay of months [0, 1)
  std::size_t min_jobs;         ///< sanity floor on the generated size
};

// Committed golden values (seed 4242, job_count_scale 0.05).
constexpr Golden kGolden[] = {
    {"v100", 999695927993735388ull, 1171922746846214506ull, 100},
    {"rtx", 11093893802441895505ull, 12202898578600681424ull, 100},
    {"a100", 9129525659653583131ull, 12124648476754820218ull, 100},
};

// The committed hashes pin one platform's arithmetic: the lognormal /
// erfc draws go through libm, whose last-ulp behavior differs across
// libm implementations and ISAs. Guard rather than chase per-platform
// constants (see the ROADMAP note); the replay invariants themselves are
// covered platform-independently by sim_test/property_test.
#if defined(__x86_64__) && defined(__GLIBC__)
constexpr bool kGoldenPlatform = true;
#else
constexpr bool kGoldenPlatform = false;
#endif

#define MIRAGE_REQUIRE_GOLDEN_PLATFORM()                                              \
  if (!kGoldenPlatform) {                                                             \
    GTEST_SKIP() << "golden hashes are pinned to x86-64 + glibc libm; this platform " \
                    "may differ in last-ulp libm behavior";                           \
  }

class GoldenTrace : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenTrace, GeneratorOutputMatchesCommittedHash) {
  MIRAGE_REQUIRE_GOLDEN_PLATFORM();
  const auto& g = GetParam();
  trace::GeneratorOptions opt;
  opt.seed = 4242;
  opt.job_count_scale = 0.05;
  trace::SyntheticTraceGenerator gen(trace::preset_by_name(g.cluster), opt);
  const auto workload = gen.generate_months(0, 2);
  EXPECT_GE(workload.size(), g.min_jobs);
  EXPECT_EQ(workload_hash(workload), g.trace_hash)
      << g.cluster << ": workload statistics changed — if intentional, update kGolden";
}

TEST_P(GoldenTrace, DefaultReplayMatchesCommittedHash) {
  MIRAGE_REQUIRE_GOLDEN_PLATFORM();
  const auto& g = GetParam();
  const auto preset = trace::preset_by_name(g.cluster);
  trace::GeneratorOptions opt;
  opt.seed = 4242;
  opt.job_count_scale = 0.05;
  trace::SyntheticTraceGenerator gen(preset, opt);
  const auto schedule = sim::replay_trace(gen.generate_months(0, 1), preset.node_count);
  EXPECT_EQ(schedule_hash(schedule), g.replay_hash)
      << g.cluster << ": scheduling behavior changed — if intentional, update kGolden";
}

INSTANTIATE_TEST_SUITE_P(Presets, GoldenTrace, ::testing::ValuesIn(kGolden),
                         [](const ::testing::TestParamInfo<Golden>& info) {
                           return std::string(info.param.cluster);
                         });

}  // namespace
}  // namespace mirage

// Tests for the two-phase training machinery (§4.9): parallel rollout
// fan-out, replay seeding, report bookkeeping, and PG batch updates driven
// through the real environment.
#include <gtest/gtest.h>

#include "rl/trainer.hpp"
#include "trace/generator.hpp"

namespace mirage::rl {
namespace {

using util::kDay;
using util::kHour;
using util::kMinute;

nn::FoundationConfig tiny_net() {
  nn::FoundationConfig cfg;
  cfg.history_len = 4;
  cfg.state_dim = kFrameDim;
  cfg.d_model = 8;
  cfg.num_heads = 2;
  cfg.num_layers = 1;
  cfg.ffn_hidden = 16;
  cfg.moe_experts = 2;
  return cfg;
}

EpisodeConfig tiny_episode() {
  EpisodeConfig ec;
  ec.job_runtime = 6 * kHour;
  ec.job_limit = 6 * kHour;
  ec.decision_interval = kHour;
  ec.warmup = 4 * kHour;
  ec.history_len = 4;
  return ec;
}

trace::Trace small_workload() {
  trace::GeneratorOptions opt;
  opt.seed = 77;
  opt.job_count_scale = 0.2;
  trace::SyntheticTraceGenerator gen(trace::a100_preset(), opt);
  return gen.generate_months(0, 2);
}

TEST(Trainer, DqnOnlineRunsRequestedEpisodes) {
  const auto workload = small_workload();
  DqnConfig dc;
  dc.net = tiny_net();
  DqnAgent agent(dc, 3);
  OnlineTrainConfig oc;
  oc.episodes = 6;
  oc.episodes_per_round = 3;
  oc.train_steps_per_round = 2;
  oc.parallel = true;
  const auto report = train_dqn_online(agent, workload, 76, tiny_episode(), 2 * kDay,
                                       40 * kDay, oc);
  EXPECT_EQ(report.episodes, 6u);
  EXPECT_EQ(report.losses.size(), 2u);  // two rounds
  for (float l : report.losses) EXPECT_TRUE(std::isfinite(l));
  // Episode rewards are penalties.
  EXPECT_LE(report.mean_reward_last_quarter, 0.0);
}

TEST(Trainer, DqnSeedSamplesPrepopulateReplay) {
  const auto workload = small_workload();
  DqnConfig dc;
  dc.net = tiny_net();
  DqnAgent agent(dc, 4);
  std::vector<Experience> seed(8);
  for (auto& e : seed) {
    e.observation.assign(dc.net.input_dim(), 0.1f);
    e.action = 1;
    e.reward = -2.0f;
  }
  OnlineTrainConfig oc;
  oc.episodes = 2;
  oc.episodes_per_round = 2;
  oc.train_steps_per_round = 4;
  oc.parallel = false;
  const auto report =
      train_dqn_online(agent, workload, 76, tiny_episode(), 2 * kDay, 40 * kDay, oc, seed);
  // With a seeded buffer the very first round already trains (finite loss).
  ASSERT_FALSE(report.losses.empty());
  EXPECT_GT(report.losses[0], 0.0f);
}

TEST(Trainer, PgOnlineUpdatesPolicyAndReports) {
  const auto workload = small_workload();
  PgConfig pc;
  pc.net = tiny_net();
  PgAgent agent(pc, 5);
  std::vector<float> obs(pc.net.input_dim(), 0.1f);
  OnlineTrainConfig oc;
  oc.episodes = 4;
  oc.episodes_per_round = 2;
  oc.parallel = true;
  const auto report =
      train_pg_online(agent, workload, 76, tiny_episode(), 2 * kDay, 40 * kDay, oc);
  EXPECT_EQ(report.episodes, 4u);
  EXPECT_EQ(report.losses.size(), 2u);
  // Baseline got initialized from rollout rewards.
  EXPECT_LE(agent.baseline(), 0.0f);
}

TEST(Trainer, ParallelAndSerialDqnSeeDeterministicAnchors) {
  // The anchor/seed sequence is drawn before the fan-out, so parallel and
  // serial runs collect the same episode anchors (rewards can differ only
  // through model state, which we freeze by doing zero train steps).
  const auto workload = small_workload();
  DqnConfig dc;
  dc.net = tiny_net();
  dc.eps_start = 0.0f;  // deterministic greedy policy
  dc.eps_end = 0.0f;
  OnlineTrainConfig oc;
  oc.episodes = 4;
  oc.episodes_per_round = 4;
  oc.train_steps_per_round = 0;
  oc.seed = 99;

  DqnAgent a(dc, 7), b(dc, 7);
  oc.parallel = false;
  const auto serial = train_dqn_online(a, workload, 76, tiny_episode(), 2 * kDay, 40 * kDay, oc);
  oc.parallel = true;
  const auto parallel = train_dqn_online(b, workload, 76, tiny_episode(), 2 * kDay, 40 * kDay, oc);
  EXPECT_DOUBLE_EQ(serial.mean_reward_first_quarter, parallel.mean_reward_first_quarter);
  EXPECT_DOUBLE_EQ(serial.mean_reward_last_quarter, parallel.mean_reward_last_quarter);
}

TEST(Trainer, PretrainEmptySamplesIsNoop) {
  DqnConfig dc;
  dc.net = tiny_net();
  DqnAgent agent(dc, 8);
  PretrainConfig pc;
  EXPECT_TRUE(pretrain_foundation(agent, {}, pc).empty());
}

}  // namespace
}  // namespace mirage::rl

// Integration tests: the full offline+online pipeline on a scaled-down
// cluster, asserting the paper's qualitative results (learned methods beat
// the reactive baseline under load) rather than absolute numbers.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"

namespace mirage::core {
namespace {

/// Shared fixture: one small A100 pipeline trained once for all checks
/// (training is the expensive part).
class PipelineIntegration : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Full compact budgets: training variance at smaller budgets makes the
    // paper-shape assertions below flaky.
    auto cfg = PipelineConfig::compact(trace::a100_preset(), 1, 4242);
    pipeline_ = new MiragePipeline(cfg);
    pipeline_->prepare();
    pipeline_->collect_offline();
    pipeline_->train_all({Method::kRandomForest, Method::kXgboost, Method::kMoeDqn,
                          Method::kTransformerPg});
    evals_ = new std::vector<MethodEval>(pipeline_->evaluate(
        {Method::kReactive, Method::kAvg, Method::kRandomForest, Method::kXgboost,
         Method::kMoeDqn, Method::kTransformerPg}));
  }
  static void TearDownTestSuite() {
    delete evals_;
    delete pipeline_;
    pipeline_ = nullptr;
    evals_ = nullptr;
  }

  static const MethodEval& eval_of(const std::string& name) {
    for (const auto& e : *evals_) {
      if (e.method == name) return e;
    }
    throw std::logic_error("method not evaluated: " + name);
  }

  static MiragePipeline* pipeline_;
  static std::vector<MethodEval>* evals_;
};

MiragePipeline* PipelineIntegration::pipeline_ = nullptr;
std::vector<MethodEval>* PipelineIntegration::evals_ = nullptr;

TEST_F(PipelineIntegration, OfflineDatasetNonTrivial) {
  EXPECT_GT(pipeline_->offline_dataset().nn_samples.size(), 100u);
  EXPECT_GT(pipeline_->offline_dataset().tabular.size(), 50u);
}

TEST_F(PipelineIntegration, ReactiveSuffersUnderHeavyLoad) {
  const auto& r = eval_of("reactive").at(LoadClass::kHeavy);
  ASSERT_GT(r.episodes, 0u);
  EXPECT_GT(r.interruption_hours.mean(), 12.0);  // heavy means >12 h wait
  EXPECT_DOUBLE_EQ(r.overlap_hours.mean(), 0.0);
}

TEST_F(PipelineIntegration, LearnedMethodsReduceHeavyInterruption) {
  // Paper §6: 17-100% interruption reduction. REINFORCE training variance
  // means a single method at a single seed can land short, so we assert
  // the ensemble of claims: no learned method is materially worse than
  // reactive, most clear the paper's 17% floor, and the best method cuts
  // interruption by well over half.
  const double reactive = eval_of("reactive").at(LoadClass::kHeavy).interruption_hours.mean();
  int cleared_17_percent = 0;
  double best = reactive;
  for (const auto* name : {"random_forest", "xgboost", "MoE+DQN", "transformer+PG"}) {
    const auto& agg = eval_of(name).at(LoadClass::kHeavy);
    ASSERT_GT(agg.episodes, 0u) << name;
    const double mean = agg.interruption_hours.mean();
    EXPECT_LT(mean, 1.05 * reactive) << name << " is worse than reactive";
    cleared_17_percent += (mean < 0.83 * reactive);
    best = std::min(best, mean);
  }
  EXPECT_GE(cleared_17_percent, 3);
  EXPECT_LT(best, 0.5 * reactive);
}

TEST_F(PipelineIntegration, MirageSafeguardsJobsWithZeroInterruption) {
  // Paper: Mirage (MoE+DQN) safeguards 23-76% of jobs with zero
  // interruption; reactive safeguards ~none under load.
  const auto& moe = eval_of("MoE+DQN").overall;
  const auto& reactive = eval_of("reactive").overall;
  EXPECT_GE(moe.zero_interruption_fraction(), 0.23);
  EXPECT_GT(moe.zero_interruption_fraction(), reactive.zero_interruption_fraction());
}

TEST_F(PipelineIntegration, RlAgentsWereTrained) {
  EXPECT_NE(pipeline_->dqn_agent(Method::kMoeDqn), nullptr);
  EXPECT_NE(pipeline_->pg_agent(Method::kTransformerPg), nullptr);
  EXPECT_EQ(pipeline_->dqn_agent(Method::kTransformerDqn), nullptr);  // not trained here
}

TEST_F(PipelineIntegration, AllMethodsEvaluatedOnSameAnchorCount) {
  const std::size_t n = eval_of("reactive").overall.episodes;
  for (const auto& e : *evals_) EXPECT_EQ(e.overall.episodes, n) << e.method;
}

}  // namespace
}  // namespace mirage::core
